package resilient

import (
	"bytes"
	"context"
	"encoding/binary"
	"testing"
	"time"

	"resilient/internal/msg"
)

func testLogOps(count, size int) [][]byte {
	ops := make([][]byte, count)
	for i := range ops {
		op := make([]byte, size)
		binary.BigEndian.PutUint64(op, uint64(i))
		for j := 8; j < size; j++ {
			op[j] = byte(i * 31)
		}
		ops[i] = op
	}
	return ops
}

func logCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	t.Cleanup(cancel)
	return ctx
}

// TestRunLogSim pins the closed-loop log on the simulator: every op commits
// exactly once in submission order, slot accounting matches the batch math,
// and the whole run is deterministic.
func TestRunLogSim(t *testing.T) {
	ops := testLogOps(50, 16)
	opts := LogOptions{Engine: EngineSim, N: 7, Seed: 42, Batch: 8, Pipeline: 4}
	rep, err := RunLog(logCtx(t), opts, ops)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops != 50 || rep.Batches != 7 || rep.Slots != 7 || rep.NoopSlots != 0 {
		t.Fatalf("ops=%d batches=%d slots=%d noops=%d, want 50/7/7/0",
			rep.Ops, rep.Batches, rep.Slots, rep.NoopSlots)
	}
	if len(rep.Committed) != len(ops) {
		t.Fatalf("%d committed ops, want %d", len(rep.Committed), len(ops))
	}
	for i, op := range ops {
		if !bytes.Equal(rep.Committed[i], op) {
			t.Fatalf("committed[%d] differs from submitted op %d", i, i)
		}
	}
	if rep.SimTime <= 0 {
		t.Fatal("sim run reported no virtual time")
	}
	again, err := RunLog(logCtx(t), opts, ops)
	if err != nil {
		t.Fatal(err)
	}
	if again.SimTime != rep.SimTime || again.Slots != rep.Slots {
		t.Fatalf("identical runs diverged: simtime %v vs %v", again.SimTime, rep.SimTime)
	}
}

// TestRunLogCrashes pins slot-boundary crashes on the simulator: slots whose
// rotating proposer is dead become no-op slots (decided V0 by the
// survivors), and every operation still commits in order.
func TestRunLogCrashes(t *testing.T) {
	ops := testLogOps(40, 16)
	opts := LogOptions{
		Engine: EngineSim, N: 7, Seed: 7, Batch: 4, Pipeline: 2,
		Crashes: []LogCrash{{Process: 2, Slot: 1}, {Process: 4, Slot: 3}},
	}
	rep, err := RunLog(logCtx(t), opts, ops)
	if err != nil {
		t.Fatal(err)
	}
	if rep.NoopSlots == 0 {
		t.Fatal("crash plan produced no no-op slots")
	}
	if rep.Ops != 40 || rep.Batches != 10 {
		t.Fatalf("ops=%d batches=%d, want 40/10", rep.Ops, rep.Batches)
	}
	if rep.Slots != rep.Batches+rep.NoopSlots || len(rep.SlotDecisions) != rep.Slots {
		t.Fatalf("slots=%d batches=%d noops=%d decisions=%d",
			rep.Slots, rep.Batches, rep.NoopSlots, len(rep.SlotDecisions))
	}
	// Check the decision pattern against the plan: slot s is no-op exactly
	// when proposer s mod 7 is dead at s.
	dead := func(p ID, s int) bool {
		return (p == 2 && s >= 1) || (p == 4 && s >= 3)
	}
	for s, v := range rep.SlotDecisions {
		want := msg.V1
		if dead(ID(s%7), s) {
			want = msg.V0
		}
		if v != want {
			t.Fatalf("slot %d decided %v, want %v", s, v, want)
		}
	}
	for i, op := range ops {
		if !bytes.Equal(rep.Committed[i], op) {
			t.Fatalf("committed[%d] differs from submitted op %d", i, i)
		}
	}
}

// TestLogEngineParity is the cross-engine determinism check: the same
// (ops, seed, batch, crash plan) commits a byte-identical operation
// sequence with identical per-slot decisions on the simulator, the
// in-memory engine, and real TCP.
func TestLogEngineParity(t *testing.T) {
	ops := testLogOps(48, 24)
	base := LogOptions{
		N: 7, Seed: 99, Batch: 8, Pipeline: 3,
		Crashes: []LogCrash{{Process: 1, Slot: 2}, {Process: 6, Slot: 0}},
	}
	type run struct {
		engine Engine
		rep    *LogReport
	}
	var runs []run
	for _, engine := range []Engine{EngineSim, EngineMem, EngineTCP} {
		opts := base
		opts.Engine = engine
		rep, err := RunLog(logCtx(t), opts, ops)
		if err != nil {
			t.Fatalf("%v: %v", engine, err)
		}
		runs = append(runs, run{engine, rep})
	}
	want := runs[0].rep
	if len(want.Committed) != len(ops) {
		t.Fatalf("sim committed %d/%d ops", len(want.Committed), len(ops))
	}
	for _, r := range runs[1:] {
		if r.rep.Slots != want.Slots || r.rep.NoopSlots != want.NoopSlots {
			t.Fatalf("%v ran %d slots (%d noop), sim ran %d (%d)",
				r.engine, r.rep.Slots, r.rep.NoopSlots, want.Slots, want.NoopSlots)
		}
		if len(r.rep.SlotDecisions) != len(want.SlotDecisions) {
			t.Fatalf("%v decided %d slots, sim %d", r.engine, len(r.rep.SlotDecisions), len(want.SlotDecisions))
		}
		for s := range want.SlotDecisions {
			if r.rep.SlotDecisions[s] != want.SlotDecisions[s] {
				t.Fatalf("%v slot %d decided %v, sim decided %v",
					r.engine, s, r.rep.SlotDecisions[s], want.SlotDecisions[s])
			}
		}
		if len(r.rep.Committed) != len(want.Committed) {
			t.Fatalf("%v committed %d ops, sim %d", r.engine, len(r.rep.Committed), len(want.Committed))
		}
		for i := range want.Committed {
			if !bytes.Equal(r.rep.Committed[i], want.Committed[i]) {
				t.Fatalf("%v committed[%d] diverges from sim", r.engine, i)
			}
		}
	}
}

// TestRunLogTCPMetrics runs a small log over real TCP with metrics on and
// checks the log instruments and commit-latency percentiles line up.
func TestRunLogTCPMetrics(t *testing.T) {
	reg := NewMetricsRegistry()
	ops := testLogOps(24, 16)
	rep, err := RunLog(logCtx(t), LogOptions{
		Engine: EngineTCP, N: 4, Seed: 5, Batch: 8, Pipeline: 2, Metrics: reg,
	}, ops)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops != 24 || rep.NoopSlots != 0 {
		t.Fatalf("ops=%d noops=%d, want 24/0", rep.Ops, rep.NoopSlots)
	}
	if rep.P50 <= 0 || rep.P95 < rep.P50 || rep.P99 < rep.P95 {
		t.Fatalf("latency percentiles out of order: p50=%v p95=%v p99=%v", rep.P50, rep.P95, rep.P99)
	}
	if rep.OpsPerSec <= 0 {
		t.Fatal("no throughput reported")
	}
	snap := reg.Snapshot()
	for name, want := range map[string]int64{
		"log.slots":         int64(rep.Slots),
		"log.batches":       int64(rep.Batches),
		"log.ops_committed": int64(rep.Ops),
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("counter %s = %d, want %d", name, got, want)
		}
	}
	if h, ok := snap.Histograms["log.commit_latency_seconds"]; !ok || h.Count != uint64(rep.Ops) {
		t.Errorf("commit latency histogram count = %+v, want %d observations", h, rep.Ops)
	}
}

// TestRunLogWorkloadOpenLoop drives the paced open-loop workload over the
// in-memory engine: every generated operation commits, and latency
// percentiles are populated.
func TestRunLogWorkloadOpenLoop(t *testing.T) {
	rep, err := RunLogWorkload(logCtx(t), LogWorkloadOptions{
		Log:  LogOptions{Engine: EngineMem, N: 4, Seed: 11, Batch: 8, Pipeline: 4},
		Ops:  200,
		Rate: 20000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops != 200 {
		t.Fatalf("committed %d/200 ops", rep.Ops)
	}
	if rep.P50 <= 0 || rep.P99 < rep.P50 {
		t.Fatalf("bad percentiles: p50=%v p99=%v", rep.P50, rep.P99)
	}
	if rep.Batches < 200/8 {
		t.Fatalf("only %d batches for 200 ops at batch 8", rep.Batches)
	}
}

// TestRunLogWorkloadSimDeterministic pins that the sim workload is a pure
// function of its options (the generator is seeded, the engine virtual).
func TestRunLogWorkloadSimDeterministic(t *testing.T) {
	opts := LogWorkloadOptions{
		Log: LogOptions{Engine: EngineSim, N: 7, Seed: 3, Batch: 16, Pipeline: 4},
		Ops: 128,
	}
	a, err := RunLogWorkload(logCtx(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLogWorkload(logCtx(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Ops != 128 || b.Ops != 128 || a.SimTime != b.SimTime || len(a.Committed) != len(b.Committed) {
		t.Fatalf("sim workload diverged: %v vs %v virtual time", a.SimTime, b.SimTime)
	}
	for i := range a.Committed {
		if !bytes.Equal(a.Committed[i], b.Committed[i]) {
			t.Fatalf("committed[%d] diverged across identical sim runs", i)
		}
	}
}

// TestBatchFrames pins the payload chunker: frames stay within the wire
// bound and concatenate back to the original operations.
func TestBatchFrames(t *testing.T) {
	big := testLogOps(5, maxLogOp/2)
	frames := batchFrames(big)
	if len(frames) < 2 {
		t.Fatalf("oversized batch packed into %d frame(s)", len(frames))
	}
	var joined []byte
	for _, f := range frames {
		if len(f) > msg.MaxPayload {
			t.Fatalf("frame of %d bytes exceeds MaxPayload", len(f))
		}
		joined = append(joined, f...)
	}
	i := 0
	for _, want := range big {
		l, n := binary.Uvarint(joined[i:])
		if n <= 0 || int(l) != len(want) {
			t.Fatalf("bad length prefix at %d", i)
		}
		i += n
		if !bytes.Equal(joined[i:i+int(l)], want) {
			t.Fatal("frame payload diverges from op")
		}
		i += int(l)
	}
	if i != len(joined) {
		t.Fatalf("%d trailing bytes after ops", len(joined)-i)
	}
	if got := batchFrames(nil); got != nil {
		t.Fatalf("empty batch produced %d frames", len(got))
	}
}

// TestLogOptionValidation covers the option error paths.
func TestLogOptionValidation(t *testing.T) {
	ctx := logCtx(t)
	ops := testLogOps(4, 16)
	cases := []LogOptions{
		{Engine: Engine(99)},
		{N: -1},
		{N: 7, K: 3},
		{N: 7, Batch: -1},
		{N: 7, Pipeline: -1},
		{N: 7, Crashes: []LogCrash{{Process: 9, Slot: 0}}},
		{N: 7, Crashes: []LogCrash{{Process: 1, Slot: -1}}},
		{N: 7, Crashes: []LogCrash{{Process: 1, Slot: 0}, {Process: 1, Slot: 2}}},
		{N: 7, Crashes: []LogCrash{{Process: 1, Slot: 0}, {Process: 2, Slot: 0}, {Process: 3, Slot: 0}}},
	}
	for i, opts := range cases {
		if _, err := RunLog(ctx, opts, ops); err == nil {
			t.Errorf("case %d (%+v): no error", i, opts)
		}
	}
	if _, err := RunLog(ctx, LogOptions{N: 4}, [][]byte{make([]byte, maxLogOp+1)}); err == nil {
		t.Error("oversized op accepted")
	}
	if _, err := RunLogWorkload(ctx, LogWorkloadOptions{Ops: -1}); err == nil {
		t.Error("negative op count accepted")
	}
	if _, err := RunLogWorkload(ctx, LogWorkloadOptions{OpBytes: 4}); err == nil {
		t.Error("op size below header accepted")
	}
	if _, err := RunLogWorkload(ctx, LogWorkloadOptions{Rate: -5}); err == nil {
		t.Error("negative rate accepted")
	}
}

// TestRunLogEmpty: an empty op list is a no-op run on every engine.
func TestRunLogEmpty(t *testing.T) {
	for _, engine := range []Engine{EngineSim, EngineMem} {
		rep, err := RunLog(logCtx(t), LogOptions{Engine: engine, N: 4}, nil)
		if err != nil {
			t.Fatalf("%v: %v", engine, err)
		}
		if rep.Ops != 0 || rep.Slots != 0 || len(rep.Committed) != 0 {
			t.Fatalf("%v: empty run committed %+v", engine, rep)
		}
	}
}
