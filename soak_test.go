package resilient

import (
	"math/rand/v2"
	"testing"
)

// TestSoak sweeps hundreds of randomized configurations across every
// protocol, verifying each traced execution with the invariant checker.
// Skipped under -short.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in short mode")
	}
	type job struct {
		p     Protocol
		n, k  int
		byz   bool // attach adversaries (malicious protocol only)
		crash bool // attach crash plans (fail-stop protocols)
	}
	jobs := []job{
		{ProtocolFailStop, 5, 2, false, true},
		{ProtocolFailStop, 9, 4, false, true},
		{ProtocolFailStop, 13, 6, false, true},
		{ProtocolMalicious, 7, 2, true, false},
		{ProtocolMalicious, 10, 3, true, false},
		{ProtocolMajority, 10, 3, false, false},
		{ProtocolBenOrCrash, 7, 3, false, true},
		{ProtocolBenOrByzantine, 11, 2, true, false},
		{ProtocolBivalence, 6, 3, false, true},
	}
	strategies := []Strategy{
		StrategySilent, StrategyBalancer, StrategyFlipper,
		StrategyLiar0, StrategyLiar1, StrategyEquivocator,
		StrategyDoubleEcho, StrategyMute,
	}
	const seedsPerJob = 60
	for _, j := range jobs {
		j := j
		t.Run(j.p.String(), func(t *testing.T) {
			t.Parallel()
			for seed := uint64(0); seed < seedsPerJob; seed++ {
				rng := rand.New(rand.NewPCG(seed, uint64(j.n)<<8|uint64(j.k)))
				inputs := make([]Value, j.n)
				for i := range inputs {
					inputs[i] = Value(rng.IntN(2))
				}
				opts := SimOptions{Seed: seed}
				buf := NewTraceBuffer(0)
				opts.Trace = buf
				if j.byz {
					strat := strategies[rng.IntN(len(strategies))]
					opts.Adversaries = map[ID]Strategy{}
					for i := 0; i < j.k; i++ {
						opts.Adversaries[ID(j.n-1-i)] = strat
					}
				}
				if j.crash {
					f := rng.IntN(j.k + 1)
					opts.Crashes = map[ID]Crash{}
					perm := rng.Perm(j.n)
					for i := 0; i < f; i++ {
						id := ID(perm[i])
						c := Crash{
							Process:    id,
							Phase:      Phase(rng.IntN(3)),
							AfterSends: rng.IntN(j.n + 1),
						}
						if j.p == ProtocolBivalence {
							// The Section 5 protocol's fault model is
							// initially-dead processes only: anyone who
							// spoke in stage 0 is assumed alive forever.
							c.Phase, c.AfterSends = 0, 0
						}
						opts.Crashes[id] = c
					}
				}
				res, err := Simulate(j.p, j.n, j.k, inputs, opts)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if !res.AllDecided || !res.Agreement || res.Stalled != NotStalled {
					t.Fatalf("seed %d: decided=%v agreement=%v stall=%v (crashes=%v adv=%v)",
						seed, res.AllDecided, res.Agreement, res.Stalled,
						opts.Crashes, opts.Adversaries)
				}
				if vs := Verify(j.p, j.n, j.k, inputs, opts.Adversaries, buf, res); len(vs) > 0 {
					t.Fatalf("seed %d: invariant violations: %v", seed, vs)
				}
			}
		})
	}
}
