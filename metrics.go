package resilient

import (
	"io"

	"resilient/internal/metrics"
)

// MetricsRegistry is a concurrency-safe registry of counters, gauges, and
// fixed-bucket histograms; see the internal metrics package for the
// instrument semantics. Attach one to SimOptions.Metrics, a cluster run via
// WithClusterMetrics, or share one registry across many runs to aggregate a
// whole experiment campaign. A nil registry is always valid and free.
type MetricsRegistry = metrics.Registry

// MetricsSnapshot is the frozen state of a registry. Its JSON encoding
// (WriteJSON) is key-sorted and byte-stable for identical contents, so CI
// can diff and archive snapshots.
type MetricsSnapshot = metrics.Snapshot

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// WriteMetricsJSON writes a registry snapshot as indented, key-sorted JSON.
func WriteMetricsJSON(w io.Writer, r *MetricsRegistry) error {
	return r.Snapshot().WriteJSON(w)
}
