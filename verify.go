package resilient

import (
	"resilient/internal/check"
	"resilient/internal/msg"
	"resilient/internal/proto"
)

// Violation is one broken protocol invariant found by Verify.
type Violation = check.Violation

// Verify checks a traced execution against the invariants the paper proves:
// agreement, validity, write-once decisions, phase monotonicity, decision
// support (witness/accept thresholds), and silence after crashes. Pass the
// TraceBuffer given to Simulate via SimOptions.Trace, the returned Result,
// and the same configuration. It returns all violations found (nil when the
// execution is clean).
//
//	buf := resilient.NewTraceBuffer(0)
//	res, _ := resilient.Simulate(p, n, k, inputs, resilient.SimOptions{Trace: buf})
//	if vs := resilient.Verify(p, n, k, inputs, nil, buf, res); len(vs) > 0 { ... }
func Verify(p Protocol, n, k int, inputs []Value, adversaries map[ID]Strategy,
	buf *TraceBuffer, res *Result) []Violation {
	byz := make(map[msg.ID]bool, len(adversaries))
	for id := range adversaries {
		byz[id] = true
	}
	cfg := check.Config{N: n, K: k, Inputs: inputs, Byzantine: byz}
	if d, ok := proto.Lookup(p); ok {
		// The descriptor names the checker's protocol-specific support
		// rules (empty = generic checks only) and marks protocols that
		// decide an agreed function of the inputs rather than a
		// majority-respecting value.
		cfg.Protocol = d.CheckName
		cfg.SkipValidity = d.SkipValidity
	}
	return check.Run(cfg, buf.Events(), res)
}
