package resilient

import (
	"fmt"

	"resilient/internal/markov"
	"resilient/internal/mc"
	"resilient/internal/stats"
)

// ChainAnalysis holds the exact Section 4 Markov results for one
// configuration.
type ChainAnalysis struct {
	// N and K are the configuration.
	N, K int
	// FromBalanced is the exact expected number of phases to absorption
	// starting from the balanced state (the slowest start).
	FromBalanced float64
	// ByState is the expected absorption time from every chain state.
	ByState []float64
}

// AnalyzeFailStop solves the Section 4.1 chain exactly: the expected number
// of phases until the system's value distribution collapses, with n
// processes, fault parameter k, and nobody actually dying (the fail-stop
// worst case of Section 4).
func AnalyzeFailStop(n, k int) (*ChainAnalysis, error) {
	c := markov.FailStop{N: n, K: k}
	byState, err := c.ExpectedAbsorption()
	if err != nil {
		return nil, err
	}
	return &ChainAnalysis{N: n, K: k, FromBalanced: byState[n/2], ByState: byState}, nil
}

// AnalyzeMalicious solves the Section 4.2 chain exactly: n-k correct
// processes against k balancing adversaries. forced selects the paper's
// adversary model, in which the k adversarial messages appear in every view.
func AnalyzeMalicious(n, k int, forced bool) (*ChainAnalysis, error) {
	c := markov.Malicious{N: n, K: k, Forced: forced}
	byState, err := c.ExpectedAbsorption()
	if err != nil {
		return nil, err
	}
	// (n-k)/2 is the balanced middle *state index* of the n-k correct
	// processes, not a decision threshold.
	//lint:allow quorumarith positional index of the balanced chain state, not a quorum
	return &ChainAnalysis{N: n, K: k, FromBalanced: byState[(n-k)/2], ByState: byState}, nil
}

// FailStopPhaseBound evaluates the paper's closed-form eq. (13) bound on the
// expected phases to absorption for the fail-stop chain, with band parameter
// l. The paper's choice l = sqrt(1.5) makes the bound < 7 for every n.
func FailStopPhaseBound(n int, l float64) float64 {
	return markov.CollapsedBound(n, l)
}

// DefaultBandL is the paper's band parameter l = sqrt(1.5).
var DefaultBandL = markov.DefaultL

// MaliciousPhaseBound evaluates the Section 4.2 bound 1/(2*Phi(l)) on the
// expected phases to absorption with k = l*sqrt(n)/2 balancing adversaries.
func MaliciousPhaseBound(l float64) float64 {
	return markov.MaliciousBound(l)
}

// Estimate is a Monte-Carlo estimate with its sampling error.
type Estimate struct {
	// Mean is the sample mean and CI95 the half-width of its 95%
	// confidence interval.
	Mean, CI95 float64
	// Min and Max are the extreme samples; Trials the sample count.
	Min, Max float64
	Trials   int
}

// String renders the estimate.
func (e Estimate) String() string {
	return fmt.Sprintf("%.2f ± %.2f (n=%d)", e.Mean, e.CI95, e.Trials)
}

// EstimateFailStopAbsorption estimates, by simulation under the Section 4
// view model, the expected phases to absorption of the fail-stop chain from
// the balanced start.
func EstimateFailStopAbsorption(n, k, trials int, seed uint64) (Estimate, error) {
	chain := mc.FailStop{N: n, K: k}
	rng := newRand(seed)
	var acc stats.Accumulator
	for t := 0; t < trials; t++ {
		phases, err := chain.AbsorptionRun(n/2, rng, 0)
		if err != nil {
			return Estimate{}, err
		}
		acc.Add(float64(phases))
	}
	return toEstimate(acc), nil
}

// EstimateFailStopDecision estimates the expected phases until every process
// has decided in the majority-variant protocol (per-process simulation under
// the Section 4 view model), starting from the given number of 1-inputs.
func EstimateFailStopDecision(n, k, startOnes, trials int, seed uint64) (Estimate, error) {
	chain := mc.FailStop{N: n, K: k}
	rng := newRand(seed)
	var acc stats.Accumulator
	for t := 0; t < trials; t++ {
		phases, _, err := chain.DecisionRun(startOnes, rng, 0)
		if err != nil {
			return Estimate{}, err
		}
		acc.Add(float64(phases))
	}
	return toEstimate(acc), nil
}

// EstimateMaliciousAbsorption estimates the expected phases to absorption of
// the Section 4.2 chain (k balancing adversaries) from the balanced start.
// forced selects the paper's always-delivered adversary model.
func EstimateMaliciousAbsorption(n, k, trials int, forced bool, seed uint64) (Estimate, error) {
	model := mc.Mixed
	if forced {
		model = mc.Forced
	}
	chain := mc.Malicious{N: n, K: k, Model: model}
	rng := newRand(seed)
	var acc stats.Accumulator
	for t := 0; t < trials; t++ {
		// Start from the balanced middle state index, not a threshold.
		//lint:allow quorumarith positional index of the balanced chain state, not a quorum
		phases, err := chain.AbsorptionRun((n-k)/2, rng, 0)
		if err != nil {
			return Estimate{}, err
		}
		acc.Add(float64(phases))
	}
	return toEstimate(acc), nil
}

func toEstimate(acc stats.Accumulator) Estimate {
	s := acc.Summarize()
	return Estimate{Mean: s.Mean, CI95: s.CI95, Min: s.Min, Max: s.Max, Trials: s.N}
}

// DecisionSplit computes, for every possible initial count of 1-valued
// inputs, the probability that consensus lands on 1 in the Section 4.1
// chain -- the quantitative form of the paper's remark that "the consensus
// value is still likely to be equal to the majority of the initial input
// values". The returned slice is indexed by the initial 1-count (0..n).
func DecisionSplit(n, k int) ([]float64, error) {
	return markov.FailStop{N: n, K: k}.AbsorptionSplit()
}

// AbsorptionTail computes P[T > t] for t = 0..maxPhases, where T is the
// fail-stop chain's phases-to-absorption from the balanced start: the full
// run-length distribution behind the Section 4.1 expectation, exact via
// repeated application of the transient submatrix.
func AbsorptionTail(n, k, maxPhases int) ([]float64, error) {
	return markov.FailStop{N: n, K: k}.TailFromBalanced(maxPhases)
}

// MaliciousAbsorptionTail is the malicious-chain analogue of AbsorptionTail
// (k balancing adversaries; forced selects the paper's delivery model).
func MaliciousAbsorptionTail(n, k, maxPhases int, forced bool) ([]float64, error) {
	return markov.Malicious{N: n, K: k, Forced: forced}.TailFromBalanced(maxPhases)
}
