package resilient

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVerifyCleanRun(t *testing.T) {
	inputs := mixed(7)
	buf := NewTraceBuffer(0)
	res, err := Simulate(ProtocolFailStop, 7, 3, inputs, SimOptions{Seed: 5, Trace: buf})
	if err != nil {
		t.Fatal(err)
	}
	if vs := Verify(ProtocolFailStop, 7, 3, inputs, nil, buf, res); len(vs) > 0 {
		t.Fatalf("violations on clean run: %v", vs)
	}
}

func TestVerifyMaliciousWithAdversaries(t *testing.T) {
	inputs := mixed(7)
	adv := map[ID]Strategy{5: StrategyEquivocator, 6: StrategyBalancer}
	buf := NewTraceBuffer(0)
	res, err := Simulate(ProtocolMalicious, 7, 2, inputs, SimOptions{
		Seed: 9, Trace: buf, Adversaries: adv,
	})
	if err != nil {
		t.Fatal(err)
	}
	if vs := Verify(ProtocolMalicious, 7, 2, inputs, adv, buf, res); len(vs) > 0 {
		t.Fatalf("violations: %v", vs)
	}
}

func TestDecisionSplit(t *testing.T) {
	split, err := DecisionSplit(30, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(split) != 31 {
		t.Fatalf("len %d", len(split))
	}
	if split[0] != 0 || split[30] != 1 {
		t.Errorf("endpoints %v, %v", split[0], split[30])
	}
	// More initial ones, (weakly) more likely to decide 1.
	for i := 1; i <= 30; i++ {
		if split[i] < split[i-1]-1e-9 {
			t.Fatalf("split not monotone at %d", i)
		}
	}
}

func TestEstimateFailStopDecision(t *testing.T) {
	est, err := EstimateFailStopDecision(30, 9, 15, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	if est.Mean < 1 || est.Mean > 50 || est.Trials != 200 {
		t.Fatalf("implausible estimate %+v", est)
	}
	if est.String() == "" {
		t.Error("empty estimate string")
	}
}

func TestSimulateUnsafeBypassesBound(t *testing.T) {
	// k beyond the bound is rejected normally and accepted with Unsafe.
	if _, err := Simulate(ProtocolFailStop, 6, 3, mixed(6), SimOptions{}); err == nil {
		t.Fatal("over-bound k accepted without Unsafe")
	}
	res, err := Simulate(ProtocolFailStop, 6, 3, mixed(6), SimOptions{
		Unsafe: true, MaxSimTime: 50,
	})
	if err != nil {
		t.Fatalf("unsafe rejected: %v", err)
	}
	// With k = n/2 Figure 1 cannot decide; it must stall without
	// disagreeing.
	if !res.Agreement {
		t.Fatal("unsafe run broke agreement")
	}
}

func TestSimulateTraceCapturesDecides(t *testing.T) {
	buf := NewTraceBuffer(0)
	res, err := Simulate(ProtocolFailStop, 5, 2, mixed(5), SimOptions{Seed: 2, Trace: buf})
	if err != nil {
		t.Fatal(err)
	}
	decides := 0
	for _, e := range buf.Events() {
		if e.Kind.String() == "decide" {
			decides++
		}
	}
	if decides != res.DecidedCount() {
		t.Fatalf("%d decide events, %d decisions", decides, res.DecidedCount())
	}
}

func TestAnalyzeConsistency(t *testing.T) {
	// The public wrappers must agree with each other: bound dominates
	// exact for the paper's parametrization.
	for _, n := range []int{30, 60} {
		an, err := AnalyzeFailStop(n, n/3)
		if err != nil {
			t.Fatal(err)
		}
		if b := FailStopPhaseBound(n, DefaultBandL); an.FromBalanced > b {
			t.Errorf("n=%d: exact %v > bound %v", n, an.FromBalanced, b)
		}
		if len(an.ByState) != n+1 {
			t.Errorf("ByState length %d", len(an.ByState))
		}
	}
}

func TestMaliciousPhaseBoundMonotone(t *testing.T) {
	prev := 0.0
	for _, l := range []float64{0.1, 0.5, 1, 1.5, 2, 2.5} {
		b := MaliciousPhaseBound(l)
		if b <= prev {
			t.Fatalf("bound not increasing at l=%v: %v <= %v", l, b, prev)
		}
		if math.IsNaN(b) || math.IsInf(b, 0) {
			t.Fatalf("bound at l=%v is %v", l, b)
		}
		prev = b
	}
}

func TestProtocolStringsAndValidity(t *testing.T) {
	for _, p := range Protocols() {
		if !p.Valid() {
			t.Errorf("%v invalid", p)
		}
		if p.String() == "" {
			t.Errorf("protocol %d unnamed", int(p))
		}
	}
	if Protocol(0).Valid() || Protocol(99).Valid() {
		t.Error("out-of-range protocol valid")
	}
	if _, err := Simulate(Protocol(99), 3, 1, mixed(3), SimOptions{}); err == nil {
		t.Error("unknown protocol simulated")
	}
}

func TestNewMachinePublic(t *testing.T) {
	m, err := NewMachine(ProtocolFailStop, MachineConfig{N: 5, K: 2, Self: 1, Input: V1})
	if err != nil {
		t.Fatal(err)
	}
	if m.ID() != 1 {
		t.Errorf("id %d", m.ID())
	}
	if outs := m.Start(); len(outs) != 1 {
		t.Errorf("start outs %d", len(outs))
	}
	// Ben-Or machines build directly through NewMachine: the registry
	// resolves the coin scheme and seeds the coin from CoinSeed.
	if _, err := NewMachine(ProtocolBenOrCrash, MachineConfig{N: 5, K: 2, CoinSeed: 1}); err != nil {
		t.Errorf("NewMachine(ProtocolBenOrCrash): %v", err)
	}
	if _, err := NewMachine(ProtocolBenOrShared, MachineConfig{N: 5, K: 2, CoinSeed: 1}); err != nil {
		t.Errorf("NewMachine(ProtocolBenOrShared): %v", err)
	}
	// Coin overrides that contradict the protocol are rejected.
	if _, err := NewMachine(ProtocolFailStop, MachineConfig{N: 5, K: 2, Coin: CoinShared}); err == nil {
		t.Error("coin override accepted for a deterministic protocol")
	}
	if _, err := NewMachine(ProtocolBenOrCrash, MachineConfig{N: 5, K: 2, Coin: CoinNone}); err == nil {
		t.Error("coinless override accepted for a randomized protocol")
	}
	bm, err := NewBenOrMachine(ProtocolBenOrCrash, MachineConfig{N: 5, K: 2, Self: 0, Input: V0}, 1)
	if err != nil || bm == nil {
		t.Fatalf("NewBenOrMachine: %v", err)
	}
	if _, err := NewBenOrMachine(ProtocolFailStop, MachineConfig{N: 5, K: 2}, 1); err == nil {
		t.Error("non-benor protocol accepted by NewBenOrMachine")
	}
}

func TestStrategyStrings(t *testing.T) {
	for s := StrategySilent; s <= StrategyMute; s++ {
		if s.String() == "" {
			t.Errorf("strategy %d unnamed", int(s))
		}
	}
}

func TestAbsorptionTails(t *testing.T) {
	tail, err := AbsorptionTail(60, 20, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 16 || tail[0] != 1 {
		t.Fatalf("tail %v", tail[:2])
	}
	for i := 1; i < len(tail); i++ {
		if tail[i] > tail[i-1]+1e-12 {
			t.Fatalf("tail increased at %d", i)
		}
	}
	mtail, err := MaliciousAbsorptionTail(100, 5, 15, true)
	if err != nil {
		t.Fatal(err)
	}
	if mtail[15] >= mtail[0] {
		t.Error("malicious tail did not shrink")
	}
}

func TestSimulatePropertyQuick(t *testing.T) {
	// Property: every in-bound fail-stop configuration with random inputs
	// and random crash plans terminates in agreement.
	f := func(seedLo, seedHi uint16, nRaw, split uint8) bool {
		n := 3 + int(nRaw%9) // 3..11
		k := (n - 1) / 2
		seed := uint64(seedLo)<<16 | uint64(seedHi)
		inputs := make([]Value, n)
		for i := range inputs {
			inputs[i] = Value((int(split) >> (i % 8)) & 1)
		}
		crashes := map[ID]Crash{}
		if k > 0 {
			id := ID(int(seedLo) % n)
			crashes[id] = Crash{
				Process:    id,
				Phase:      Phase(int(seedHi) % 3),
				AfterSends: int(seedLo) % (n + 1),
			}
		}
		res, err := Simulate(ProtocolFailStop, n, k, inputs, SimOptions{
			Seed: seed, Crashes: crashes,
		})
		if err != nil {
			return false
		}
		return res.AllDecided && res.Agreement && res.Stalled == NotStalled
	}
	if err := quickCheck(f, 60); err != nil {
		t.Error(err)
	}
}

// quickCheck adapts testing/quick with a bounded count.
func quickCheck(f any, count int) error {
	return quick.Check(f, &quick.Config{MaxCount: count})
}
