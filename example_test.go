package resilient_test

import (
	"fmt"

	"resilient"
)

// ExampleSimulate runs the Figure 1 fail-stop protocol with the maximum
// tolerable number of crash faults.
func ExampleSimulate() {
	inputs := []resilient.Value{1, 1, 1, 1, 1, 0, 0}
	res, err := resilient.Simulate(resilient.ProtocolFailStop, 7, 3, inputs,
		resilient.SimOptions{
			Seed: 1,
			Crashes: map[resilient.ID]resilient.Crash{
				6: {Process: 6, Phase: 0, AfterSends: 0},
			},
		})
	if err != nil {
		panic(err)
	}
	fmt.Println("agreement:", res.Agreement)
	fmt.Println("all decided:", res.AllDecided)
	// Output:
	// agreement: true
	// all decided: true
}

// ExampleSimulate_byzantine runs the Figure 2 echo protocol against an
// equivocating adversary.
func ExampleSimulate_byzantine() {
	inputs := []resilient.Value{1, 1, 1, 1, 1, 1, 0}
	res, err := resilient.Simulate(resilient.ProtocolMalicious, 7, 2, inputs,
		resilient.SimOptions{
			Seed:        3,
			Adversaries: map[resilient.ID]resilient.Strategy{6: resilient.StrategyEquivocator},
		})
	if err != nil {
		panic(err)
	}
	// The six correct processes share input 1; the equivocator cannot
	// override a supermajority.
	fmt.Println("agreement:", res.Agreement)
	fmt.Println("value:", res.Value)
	// Output:
	// agreement: true
	// value: 1
}

// ExampleFailStopPhaseBound evaluates the paper's eq. (13): the expected
// number of phases to convergence is below 7 for any system size.
func ExampleFailStopPhaseBound() {
	for _, n := range []int{30, 3000} {
		b := resilient.FailStopPhaseBound(n, resilient.DefaultBandL)
		fmt.Printf("n=%d: bound < 7: %v\n", n, b < 7)
	}
	// Output:
	// n=30: bound < 7: true
	// n=3000: bound < 7: true
}

// ExampleMaxFaultsFor shows the paper's tight resilience bounds.
func ExampleMaxFaultsFor() {
	fmt.Println("fail-stop n=10:", resilient.MaxFaultsFor(10, resilient.FailStop))
	fmt.Println("malicious n=10:", resilient.MaxFaultsFor(10, resilient.Malicious))
	// Output:
	// fail-stop n=10: 4
	// malicious n=10: 3
}

// ExampleProtocol_MaxFaults compares resilience across the implemented
// protocols.
func ExampleProtocol_MaxFaults() {
	n := 16
	for _, p := range []resilient.Protocol{
		resilient.ProtocolFailStop,
		resilient.ProtocolMalicious,
		resilient.ProtocolBenOrByzantine,
		resilient.ProtocolBivalence,
	} {
		fmt.Printf("%v: k <= %d\n", p, p.MaxFaults(n))
	}
	// Output:
	// failstop(fig1): k <= 7
	// malicious(fig2): k <= 5
	// benor-byzantine: k <= 3
	// bivalence(s5): k <= 15
}
