// Command lowerbound drives the Theorem 1 / Theorem 3 adversarial
// constructions and prints what happens, with optional per-event tracing:
// the dilemma that no protocol can escape beyond the resilience bounds --
// decide in a partition and disagree, or refuse and stall.
//
// Usage:
//
//	lowerbound            # run the full E5 table
//	lowerbound -seed 7    # different execution
package main

import (
	"flag"
	"fmt"
	"os"

	"resilient/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lowerbound:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lowerbound", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Println("Theorem 1: there is no floor(n/2)-resilient fail-stop consensus protocol.")
	fmt.Println("Theorem 3: there is no floor(n/3)-resilient malicious consensus protocol.")
	fmt.Println()
	fmt.Println("The executions below realize the proofs' constructions: a partition")
	fmt.Println("(legal under asynchrony) splits the system into groups of n-k processes,")
	fmt.Println("each large enough to run alone. A protocol that keeps deciding splits;")
	fmt.Println("the paper's protocols refuse to decide instead (their thresholds become")
	fmt.Println("unreachable), trading liveness for safety.")
	fmt.Println()
	tables, err := experiments.E5(experiments.Params{Trials: 1, Seed: *seed})
	if err != nil {
		return err
	}
	for _, t := range tables {
		t.Format(os.Stdout)
	}
	return nil
}
