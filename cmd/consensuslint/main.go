// Command consensuslint runs the project's static-analysis suite (see
// internal/lint) over the module and reports findings as
// "file:line: [rule] message" lines, as JSON, or as GitHub Actions
// annotations.
//
// Usage:
//
//	consensuslint [-format=text|json|github] [patterns...]
//
// -format=github emits one "::error file=...,line=..." workflow command per
// finding so a CI step's findings render inline on the pull request diff.
// -json remains as an alias for -format=json.
//
// Patterns follow the go tool convention relative to the module root:
// "./..." (the default) checks everything, "./internal/echo" one package,
// "./internal/mc/..." a subtree. The whole module is always loaded and
// analyzed — the hot-path call graph spans packages — and patterns filter
// which findings are reported.
//
// Exit status: 0 when clean, 1 on findings, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"resilient/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("consensuslint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as JSON (alias for -format=json)")
	format := fs.String("format", "text", "output format: text, json, or github (Actions annotations)")
	dir := fs.String("C", "", "module root (default: locate go.mod upward from the working directory)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jsonOut {
		*format = "json"
	}
	switch *format {
	case "text", "json", "github":
	default:
		fmt.Fprintf(stderr, "consensuslint: unknown -format %q (want text, json, or github)\n", *format)
		return 2
	}
	root := *dir
	if root == "" {
		wd, err := os.Getwd()
		if err != nil {
			fmt.Fprintln(stderr, "consensuslint:", err)
			return 2
		}
		root, err = findModuleRoot(wd)
		if err != nil {
			fmt.Fprintln(stderr, "consensuslint:", err)
			return 2
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	findings, err := lint.Run(lint.ProjectConfig(root))
	if err != nil {
		fmt.Fprintln(stderr, "consensuslint:", err)
		return 2
	}
	findings = filterByPatterns(findings, patterns)

	switch *format {
	case "json":
		data, err := lint.WriteJSON(findings)
		if err != nil {
			fmt.Fprintln(stderr, "consensuslint:", err)
			return 2
		}
		stdout.Write(data)
	case "github":
		stdout.Write(lint.WriteGitHub(findings))
	default:
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "consensuslint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// findModuleRoot walks upward from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// filterByPatterns keeps findings whose file matches any pattern.
func filterByPatterns(findings []lint.Finding, patterns []string) []lint.Finding {
	out := findings[:0]
	for _, f := range findings {
		for _, p := range patterns {
			if matchPattern(p, f.File) {
				out = append(out, f)
				break
			}
		}
	}
	return out
}

// matchPattern reports whether the module-relative file path falls under the
// go-style package pattern.
func matchPattern(pattern, file string) bool {
	pattern = strings.TrimPrefix(pattern, "./")
	dir := ""
	if i := strings.LastIndex(file, "/"); i >= 0 {
		dir = file[:i]
	}
	switch {
	case pattern == "..." || pattern == "":
		return true
	case strings.HasSuffix(pattern, "/..."):
		prefix := strings.TrimSuffix(pattern, "/...")
		if prefix == "." || prefix == "" {
			return true
		}
		return dir == prefix || strings.HasPrefix(dir, prefix+"/")
	case pattern == ".":
		return dir == ""
	default:
		return dir == strings.TrimSuffix(pattern, "/")
	}
}
