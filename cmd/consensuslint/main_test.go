package main

import (
	"testing"

	"resilient/internal/lint"
)

func TestMatchPattern(t *testing.T) {
	cases := []struct {
		pattern, file string
		want          bool
	}{
		{"./...", "internal/echo/echo.go", true},
		{"./...", "main.go", true},
		{"...", "internal/echo/echo.go", true},
		{".", "main.go", true},
		{".", "internal/echo/echo.go", false},
		{"./internal/echo", "internal/echo/echo.go", true},
		{"internal/echo", "internal/echo/echo.go", true},
		{"./internal/echo", "internal/echostorm/x.go", false},
		{"./internal/echo", "internal/echo/sub/x.go", false},
		{"./internal/mc/...", "internal/mc/mc.go", true},
		{"./internal/mc/...", "internal/mc/sub/x.go", true},
		{"./internal/mc/...", "internal/mcmc/x.go", false},
		{"./internal/mc/...", "cmd/experiments/main.go", false},
	}
	for _, c := range cases {
		if got := matchPattern(c.pattern, c.file); got != c.want {
			t.Errorf("matchPattern(%q, %q) = %v, want %v", c.pattern, c.file, got, c.want)
		}
	}
}

func TestFilterByPatterns(t *testing.T) {
	findings := []lint.Finding{
		{File: "internal/echo/echo.go", Line: 1, Rule: "walltime"},
		{File: "internal/mc/mc.go", Line: 2, Rule: "hotalloc"},
		{File: "cmd/experiments/main.go", Line: 3, Rule: "metricshandle"},
	}
	got := filterByPatterns(append([]lint.Finding(nil), findings...), []string{"./internal/..."})
	if len(got) != 2 {
		t.Fatalf("filter ./internal/... kept %d findings, want 2: %v", len(got), got)
	}
	if got[0].File != "internal/echo/echo.go" || got[1].File != "internal/mc/mc.go" {
		t.Errorf("unexpected files after filtering: %v", got)
	}
	all := filterByPatterns(append([]lint.Finding(nil), findings...), []string{"./..."})
	if len(all) != 3 {
		t.Errorf("filter ./... kept %d findings, want 3", len(all))
	}
}
