package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesSelectedExperiment(t *testing.T) {
	out := filepath.Join(t.TempDir(), "e12.md")
	err := run([]string{"-only", "E12", "-quick", "-markdown", "-out", out})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	if !strings.Contains(text, "E12") || !strings.Contains(text, "DISAGREEMENT") {
		t.Fatalf("unexpected output:\n%s", text)
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	if err := run([]string{"-only", "E99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
