// Command experiments regenerates every table of the reproduction (the
// E1-E10 index in DESIGN.md) and prints them as text or markdown.
//
// Usage:
//
//	experiments                 # run everything at full scale
//	experiments -only E1,E5     # run a subset
//	experiments -quick          # reduced scale (seconds, not minutes)
//	experiments -markdown       # emit EXPERIMENTS.md-ready markdown
//	experiments -trials 1000    # more trials per row
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"resilient/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		only     = fs.String("only", "", "comma-separated experiment ids (default: all)")
		quick    = fs.Bool("quick", false, "reduced system sizes and trial counts")
		markdown = fs.Bool("markdown", false, "emit markdown instead of aligned text")
		trials   = fs.Int("trials", 0, "trials per table row (0 = default)")
		seed     = fs.Uint64("seed", 1, "base random seed")
		outPath  = fs.String("out", "", "write output to this file instead of stdout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	params := experiments.DefaultParams()
	if *quick {
		params = experiments.QuickParams()
	}
	if *trials > 0 {
		params.Trials = *trials
	}
	params.Seed = *seed

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return fmt.Errorf("create %s: %w", *outPath, err)
		}
		defer f.Close()
		out = f
	}

	var selected []experiments.Experiment
	if *only == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*only, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q", id)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		start := time.Now()
		tables, err := e.Run(params)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if !*markdown {
			fmt.Fprintf(out, "=== %s: %s (%.1fs) ===\n\n", e.ID, e.Name, time.Since(start).Seconds())
		}
		for _, t := range tables {
			if *markdown {
				t.Markdown(out)
			} else {
				t.Format(out)
			}
		}
	}
	return nil
}
