// Command experiments regenerates every table of the reproduction (the
// E1-E13 index in DESIGN.md) and prints them as text or markdown.
//
// Usage:
//
//	experiments                 # run everything at full scale
//	experiments -only E1,E5     # run a subset
//	experiments -quick          # reduced scale (seconds, not minutes)
//	experiments -markdown       # emit EXPERIMENTS.md-ready markdown
//	experiments -trials 1000    # more trials per row
//	experiments -workers 8      # trial workers per row (0 = GOMAXPROCS)
//	experiments -metrics-json BENCH_ci.json   # archive a run-accounting snapshot
//
// With -metrics-json, every engine run and Monte-Carlo chain feeds one
// shared metrics registry, per-experiment wall-clock is recorded as a
// gauge, and the snapshot is written in the BENCH_*.json shape (schema
// "resilient/bench/v1", key-sorted) so CI can archive one per commit.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"resilient"
	"resilient/internal/experiments"
	"resilient/internal/metrics"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		only        = fs.String("only", "", "comma-separated experiment ids (default: all)")
		quick       = fs.Bool("quick", false, "reduced system sizes and trial counts")
		markdown    = fs.Bool("markdown", false, "emit markdown instead of aligned text")
		trials      = fs.Int("trials", 0, "trials per table row (0 = default)")
		workers     = fs.Int("workers", 0, "concurrent trial workers per table row (0 = GOMAXPROCS); the tables are identical for every value")
		seed        = fs.Uint64("seed", 1, "base random seed")
		outPath     = fs.String("out", "", "write output to this file instead of stdout")
		metricsPath = fs.String("metrics-json", "", "write a key-sorted run-accounting snapshot (BENCH_*.json shape) to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	params := experiments.DefaultParams()
	if *quick {
		params = experiments.QuickParams()
	}
	if *trials > 0 {
		params.Trials = *trials
	}
	params.Seed = *seed
	params.Workers = *workers
	// The CLI is the one consumer that wants measured wall times (E13's
	// last column); tests leave this off so tables stay byte-identical.
	params.WallTimes = true

	var reg *metrics.Registry
	if *metricsPath != "" {
		reg = metrics.NewRegistry()
		params.Metrics = reg
	}

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return fmt.Errorf("create %s: %w", *outPath, err)
		}
		defer f.Close()
		out = f
	}

	var selected []experiments.Experiment
	if *only == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*only, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q", id)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		start := time.Now()
		tables, err := e.Run(params)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		elapsed := time.Since(start).Seconds()
		//lint:allow metricshandle gauge name is per-experiment and dynamic; one lookup per experiment row
		reg.Gauge("experiment." + e.ID + ".seconds").Set(elapsed)
		if !*markdown {
			fmt.Fprintf(out, "=== %s: %s (%.1fs) ===\n\n", e.ID, e.Name, elapsed)
		}
		for _, t := range tables {
			if *markdown {
				t.Markdown(out)
			} else {
				t.Format(out)
			}
		}
	}
	if *metricsPath != "" {
		if err := writeMetricsSnapshot(*metricsPath, reg, params, *quick); err != nil {
			return fmt.Errorf("metrics-json: %w", err)
		}
	}
	return nil
}

// probeRuns guarantees the snapshot carries engine counters for one
// fail-stop and one malicious run even when -only selects experiments that
// never touch the message-level engine. The probes use the same scoped
// prefixes as E3/E4, so on a full run they simply merge into the totals.
func probeRuns(reg *metrics.Registry, seed uint64) error {
	inputs := []resilient.Value{0, 1, 0, 1, 0, 1, 0}
	if _, err := resilient.Simulate(resilient.ProtocolFailStop, 7, 3, inputs, resilient.SimOptions{
		Seed:    seed,
		Metrics: reg.Scoped("failstop."),
	}); err != nil {
		return fmt.Errorf("fail-stop probe: %w", err)
	}
	adv := map[resilient.ID]resilient.Strategy{6: resilient.StrategyBalancer, 5: resilient.StrategyLiar1}
	if _, err := resilient.Simulate(resilient.ProtocolMalicious, 7, 2, inputs, resilient.SimOptions{
		Seed:        seed,
		Adversaries: adv,
		Metrics:     reg.Scoped("malicious."),
	}); err != nil {
		return fmt.Errorf("malicious probe: %w", err)
	}
	return nil
}

// benchSnapshot is the BENCH_*.json trajectory shape: fixed header fields
// identifying the configuration, then the full key-sorted metrics snapshot.
type benchSnapshot struct {
	Schema  string            `json:"schema"`
	Command string            `json:"command"`
	Quick   bool              `json:"quick"`
	Trials  int               `json:"trials"`
	Seed    uint64            `json:"seed"`
	Metrics *metrics.Snapshot `json:"metrics"`
}

func writeMetricsSnapshot(path string, reg *metrics.Registry, params experiments.Params, quick bool) error {
	if err := probeRuns(reg, params.Seed); err != nil {
		return err
	}
	snap := benchSnapshot{
		Schema:  "resilient/bench/v1",
		Command: "experiments",
		Quick:   quick,
		Trials:  params.Trials,
		Seed:    params.Seed,
		Metrics: reg.Snapshot(),
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
