package main

import (
	"io"
	"os"
	"strings"
	"testing"

	"resilient"
)

func TestParseProtocol(t *testing.T) {
	cases := map[string]resilient.Protocol{
		"failstop":        resilient.ProtocolFailStop,
		"fig1":            resilient.ProtocolFailStop,
		"malicious":       resilient.ProtocolMalicious,
		"FIG2":            resilient.ProtocolMalicious,
		"majority":        resilient.ProtocolMajority,
		"benor-crash":     resilient.ProtocolBenOrCrash,
		"benor-byzantine": resilient.ProtocolBenOrByzantine,
		"benor-shared":    resilient.ProtocolBenOrShared,
		"bivalence":       resilient.ProtocolBivalence,
		"broadcast":       resilient.ProtocolBroadcast,
	}
	for name, want := range cases {
		got, err := resilient.ParseProtocol(name)
		if err != nil || got != want {
			t.Errorf("ParseProtocol(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := resilient.ParseProtocol("paxos"); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestListProtocolsTable(t *testing.T) {
	var buf strings.Builder
	printProtocolTable(&buf, 7)
	out := buf.String()
	for _, p := range resilient.Protocols() {
		if !strings.Contains(out, p.String()) {
			t.Errorf("-list-protocols output missing %v:\n%s", p, out)
		}
	}
	for _, want := range []string{"NAME", "COIN", "shared", "(n-1)/2"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list-protocols output missing %q:\n%s", want, out)
		}
	}
}

func TestParseInputs(t *testing.T) {
	in, err := parseInputs("0101", 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []resilient.Value{0, 1, 0, 1}
	for i, v := range want {
		if in[i] != v {
			t.Fatalf("inputs %v, want %v", in, want)
		}
	}
	// Default alternation.
	def, err := parseInputs("", 3)
	if err != nil || len(def) != 3 {
		t.Fatalf("default inputs %v, %v", def, err)
	}
	if _, err := parseInputs("01", 3); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := parseInputs("01x", 3); err == nil {
		t.Error("non-binary input accepted")
	}
}

func TestParseCrashes(t *testing.T) {
	plan, err := parseCrashes("3:1:5,0:0:0")
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 2 {
		t.Fatalf("plan %v", plan)
	}
	c := plan[3]
	if c.Phase != 1 || c.AfterSends != 5 {
		t.Errorf("crash %+v", c)
	}
	if p, err := parseCrashes(""); err != nil || p != nil {
		t.Error("empty spec should give nil plan")
	}
	for _, bad := range []string{"3:1", "a:b:c", "1:2:3:4"} {
		if _, err := parseCrashes(bad); err == nil {
			t.Errorf("bad spec %q accepted", bad)
		}
	}
}

func TestParseAdversaries(t *testing.T) {
	adv, err := parseAdversaries("balancer", 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(adv) != 3 {
		t.Fatalf("adversaries %v", adv)
	}
	for _, id := range []resilient.ID{7, 8, 9} {
		if adv[id] != resilient.StrategyBalancer {
			t.Errorf("p%d strategy %v", id, adv[id])
		}
	}
	if a, err := parseAdversaries("", 10, 3); err != nil || a != nil {
		t.Error("empty spec should give nil")
	}
	if _, err := parseAdversaries("nonsense", 10, 3); err == nil {
		t.Error("unknown strategy accepted")
	}
	if _, err := parseAdversaries("silent", 10, 0); err == nil {
		t.Error("k=0 with adversaries accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	// Single trial and aggregate mode both complete without error.
	if err := run([]string{"-protocol", "failstop", "-n", "5", "-k", "2", "-seed", "3"}); err != nil {
		t.Fatalf("single run: %v", err)
	}
	if err := run([]string{"-protocol", "malicious", "-n", "7", "-trials", "5"}); err != nil {
		t.Fatalf("aggregate run: %v", err)
	}
	if err := run([]string{"-protocol", "bogus"}); err == nil ||
		!strings.Contains(err.Error(), "unknown protocol") {
		t.Fatalf("bogus protocol: %v", err)
	}
}

func TestRunSaturateMode(t *testing.T) {
	out := captureStdout(t, func() {
		if err := run([]string{"-engine", "tcp", "-saturate", "-n", "3",
			"-messages", "3000", "-linger", "1ms", "-timeout", "30s"}); err != nil {
			t.Fatalf("saturate run: %v", err)
		}
	})
	if !strings.Contains(out, "mode=coalesce") || !strings.Contains(out, "messages    3000") {
		t.Fatalf("unexpected saturation report:\n%s", out)
	}
	out = captureStdout(t, func() {
		if err := run([]string{"-engine", "tcp", "-saturate", "-n", "3",
			"-messages", "1000", "-nocoalesce", "-timeout", "30s"}); err != nil {
			t.Fatalf("direct saturate run: %v", err)
		}
	})
	if !strings.Contains(out, "mode=direct") {
		t.Fatalf("direct mode not reported:\n%s", out)
	}
	// Guard rails: saturation and TCP tuning are TCP-engine concepts.
	if err := run([]string{"-saturate"}); err == nil ||
		!strings.Contains(err.Error(), "-engine tcp") {
		t.Fatalf("saturate on sim engine: %v", err)
	}
	if err := run([]string{"-nocoalesce"}); err == nil ||
		!strings.Contains(err.Error(), "-engine tcp") {
		t.Fatalf("nocoalesce on sim engine: %v", err)
	}
}

func TestParseScheme(t *testing.T) {
	for name, want := range map[string]resilient.BroadcastScheme{
		"echo": resilient.SchemeEcho, "sample": resilient.SchemeSample, "SAMPLE": resilient.SchemeSample,
	} {
		got, err := parseScheme(name)
		if err != nil || got != want {
			t.Errorf("parseScheme(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := parseScheme("gossip"); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestValidateScale(t *testing.T) {
	cases := []struct {
		proto  resilient.Protocol
		scheme resilient.BroadcastScheme
		n      int
		eps    float64
		wantOK bool
	}{
		{resilient.ProtocolMalicious, resilient.SchemeEcho, 100, 0, true},
		{resilient.ProtocolMalicious, resilient.SchemeEcho, 1000, 0, false},
		{resilient.ProtocolMalicious, resilient.SchemeSample, 1000, 0, true},
		{resilient.ProtocolBroadcast, resilient.SchemeEcho, 1000, 0, true},
		{resilient.ProtocolBroadcast, resilient.SchemeEcho, 10000, 0, false},
		{resilient.ProtocolBroadcast, resilient.SchemeSample, 10000, 0, true},
		{resilient.ProtocolFailStop, resilient.SchemeSample, 7, 0, false},
		{resilient.ProtocolFailStop, resilient.SchemeEcho, 7, 1e-3, false},
		{resilient.ProtocolMalicious, resilient.SchemeEcho, 100, 1e-3, false},
	}
	for _, c := range cases {
		err := validateScale(c.proto, c.scheme, c.n, c.eps)
		if (err == nil) != c.wantOK {
			t.Errorf("validateScale(%v, %v, n=%d, eps=%g) = %v, wantOK=%v",
				c.proto, c.scheme, c.n, c.eps, err, c.wantOK)
		}
	}
}

// TestRunSampledBroadcast exercises the new flags end to end: sampled
// consensus at a scale the echo scheme rejects, and the fail-fast rejection
// itself.
func TestRunSampledBroadcast(t *testing.T) {
	if err := run([]string{"-protocol", "malicious", "-n", "300", "-k", "30",
		"-broadcast", "sample", "-inputs", strings.Repeat("1", 300), "-seed", "2"}); err != nil {
		t.Fatalf("sampled consensus run: %v", err)
	}
	if err := run([]string{"-protocol", "broadcast", "-n", "1000", "-k", "100",
		"-broadcast", "sample", "-eps", "1e-3", "-json"}); err != nil {
		t.Fatalf("sampled broadcast run: %v", err)
	}
	if err := run([]string{"-protocol", "malicious", "-n", "1000", "-k", "100"}); err == nil ||
		!strings.Contains(err.Error(), "-broadcast=sample") {
		t.Fatalf("echo scheme at n=1000: %v", err)
	}
	if err := run([]string{"-protocol", "failstop", "-n", "7", "-broadcast", "sample"}); err == nil {
		t.Fatalf("sample scheme on failstop accepted")
	}
	if err := run([]string{"-protocol", "malicious", "-n", "21", "-broadcast", "gossip"}); err == nil {
		t.Fatalf("unknown scheme accepted")
	}
}

func TestRunJSONMode(t *testing.T) {
	if err := run([]string{"-protocol", "failstop", "-n", "5", "-k", "2", "-json"}); err != nil {
		t.Fatalf("json run: %v", err)
	}
}

// TestRunTrialsDeterministicAcrossWorkers pins the -workers contract: the
// aggregate report is byte-identical however the trials are fanned out
// (trial tr always simulates with seed+tr).
func TestRunTrialsDeterministicAcrossWorkers(t *testing.T) {
	out := func(workers string) string {
		t.Helper()
		return captureStdout(t, func() {
			if err := run([]string{"-protocol", "failstop", "-n", "7", "-k", "3",
				"-trials", "24", "-seed", "11", "-workers", workers}); err != nil {
				t.Fatal(err)
			}
		})
	}
	base := out("1")
	if !strings.Contains(base, "trials=24") {
		t.Fatalf("missing aggregate header:\n%s", base)
	}
	for _, w := range []string{"4", "16"} {
		if got := out(w); got != base {
			t.Errorf("-workers %s changed output:\n%s\n-- want --\n%s", w, got, base)
		}
	}
}

func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	f()
	w.Close()
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}
