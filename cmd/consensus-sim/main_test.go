package main

import (
	"strings"
	"testing"

	"resilient"
)

func TestParseProtocol(t *testing.T) {
	cases := map[string]resilient.Protocol{
		"failstop":        resilient.ProtocolFailStop,
		"fig1":            resilient.ProtocolFailStop,
		"malicious":       resilient.ProtocolMalicious,
		"FIG2":            resilient.ProtocolMalicious,
		"majority":        resilient.ProtocolMajority,
		"benor-crash":     resilient.ProtocolBenOrCrash,
		"benor-byzantine": resilient.ProtocolBenOrByzantine,
		"bivalence":       resilient.ProtocolBivalence,
	}
	for name, want := range cases {
		got, err := parseProtocol(name)
		if err != nil || got != want {
			t.Errorf("parseProtocol(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := parseProtocol("paxos"); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestParseInputs(t *testing.T) {
	in, err := parseInputs("0101", 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []resilient.Value{0, 1, 0, 1}
	for i, v := range want {
		if in[i] != v {
			t.Fatalf("inputs %v, want %v", in, want)
		}
	}
	// Default alternation.
	def, err := parseInputs("", 3)
	if err != nil || len(def) != 3 {
		t.Fatalf("default inputs %v, %v", def, err)
	}
	if _, err := parseInputs("01", 3); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := parseInputs("01x", 3); err == nil {
		t.Error("non-binary input accepted")
	}
}

func TestParseCrashes(t *testing.T) {
	plan, err := parseCrashes("3:1:5,0:0:0")
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 2 {
		t.Fatalf("plan %v", plan)
	}
	c := plan[3]
	if c.Phase != 1 || c.AfterSends != 5 {
		t.Errorf("crash %+v", c)
	}
	if p, err := parseCrashes(""); err != nil || p != nil {
		t.Error("empty spec should give nil plan")
	}
	for _, bad := range []string{"3:1", "a:b:c", "1:2:3:4"} {
		if _, err := parseCrashes(bad); err == nil {
			t.Errorf("bad spec %q accepted", bad)
		}
	}
}

func TestParseAdversaries(t *testing.T) {
	adv, err := parseAdversaries("balancer", 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(adv) != 3 {
		t.Fatalf("adversaries %v", adv)
	}
	for _, id := range []resilient.ID{7, 8, 9} {
		if adv[id] != resilient.StrategyBalancer {
			t.Errorf("p%d strategy %v", id, adv[id])
		}
	}
	if a, err := parseAdversaries("", 10, 3); err != nil || a != nil {
		t.Error("empty spec should give nil")
	}
	if _, err := parseAdversaries("nonsense", 10, 3); err == nil {
		t.Error("unknown strategy accepted")
	}
	if _, err := parseAdversaries("silent", 10, 0); err == nil {
		t.Error("k=0 with adversaries accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	// Single trial and aggregate mode both complete without error.
	if err := run([]string{"-protocol", "failstop", "-n", "5", "-k", "2", "-seed", "3"}); err != nil {
		t.Fatalf("single run: %v", err)
	}
	if err := run([]string{"-protocol", "malicious", "-n", "7", "-trials", "5"}); err != nil {
		t.Fatalf("aggregate run: %v", err)
	}
	if err := run([]string{"-protocol", "bogus"}); err == nil ||
		!strings.Contains(err.Error(), "unknown protocol") {
		t.Fatalf("bogus protocol: %v", err)
	}
}

func TestRunJSONMode(t *testing.T) {
	if err := run([]string{"-protocol", "failstop", "-n", "5", "-k", "2", "-json"}); err != nil {
		t.Fatalf("json run: %v", err)
	}
}
