package main

import (
	"io"
	"os"
	"strings"
	"testing"

	"resilient"
)

func TestParseProtocol(t *testing.T) {
	cases := map[string]resilient.Protocol{
		"failstop":        resilient.ProtocolFailStop,
		"fig1":            resilient.ProtocolFailStop,
		"malicious":       resilient.ProtocolMalicious,
		"FIG2":            resilient.ProtocolMalicious,
		"majority":        resilient.ProtocolMajority,
		"benor-crash":     resilient.ProtocolBenOrCrash,
		"benor-byzantine": resilient.ProtocolBenOrByzantine,
		"bivalence":       resilient.ProtocolBivalence,
	}
	for name, want := range cases {
		got, err := parseProtocol(name)
		if err != nil || got != want {
			t.Errorf("parseProtocol(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := parseProtocol("paxos"); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestParseInputs(t *testing.T) {
	in, err := parseInputs("0101", 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []resilient.Value{0, 1, 0, 1}
	for i, v := range want {
		if in[i] != v {
			t.Fatalf("inputs %v, want %v", in, want)
		}
	}
	// Default alternation.
	def, err := parseInputs("", 3)
	if err != nil || len(def) != 3 {
		t.Fatalf("default inputs %v, %v", def, err)
	}
	if _, err := parseInputs("01", 3); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := parseInputs("01x", 3); err == nil {
		t.Error("non-binary input accepted")
	}
}

func TestParseCrashes(t *testing.T) {
	plan, err := parseCrashes("3:1:5,0:0:0")
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 2 {
		t.Fatalf("plan %v", plan)
	}
	c := plan[3]
	if c.Phase != 1 || c.AfterSends != 5 {
		t.Errorf("crash %+v", c)
	}
	if p, err := parseCrashes(""); err != nil || p != nil {
		t.Error("empty spec should give nil plan")
	}
	for _, bad := range []string{"3:1", "a:b:c", "1:2:3:4"} {
		if _, err := parseCrashes(bad); err == nil {
			t.Errorf("bad spec %q accepted", bad)
		}
	}
}

func TestParseAdversaries(t *testing.T) {
	adv, err := parseAdversaries("balancer", 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(adv) != 3 {
		t.Fatalf("adversaries %v", adv)
	}
	for _, id := range []resilient.ID{7, 8, 9} {
		if adv[id] != resilient.StrategyBalancer {
			t.Errorf("p%d strategy %v", id, adv[id])
		}
	}
	if a, err := parseAdversaries("", 10, 3); err != nil || a != nil {
		t.Error("empty spec should give nil")
	}
	if _, err := parseAdversaries("nonsense", 10, 3); err == nil {
		t.Error("unknown strategy accepted")
	}
	if _, err := parseAdversaries("silent", 10, 0); err == nil {
		t.Error("k=0 with adversaries accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	// Single trial and aggregate mode both complete without error.
	if err := run([]string{"-protocol", "failstop", "-n", "5", "-k", "2", "-seed", "3"}); err != nil {
		t.Fatalf("single run: %v", err)
	}
	if err := run([]string{"-protocol", "malicious", "-n", "7", "-trials", "5"}); err != nil {
		t.Fatalf("aggregate run: %v", err)
	}
	if err := run([]string{"-protocol", "bogus"}); err == nil ||
		!strings.Contains(err.Error(), "unknown protocol") {
		t.Fatalf("bogus protocol: %v", err)
	}
}

func TestRunSaturateMode(t *testing.T) {
	out := captureStdout(t, func() {
		if err := run([]string{"-engine", "tcp", "-saturate", "-n", "3",
			"-messages", "3000", "-linger", "1ms", "-timeout", "30s"}); err != nil {
			t.Fatalf("saturate run: %v", err)
		}
	})
	if !strings.Contains(out, "mode=coalesce") || !strings.Contains(out, "messages    3000") {
		t.Fatalf("unexpected saturation report:\n%s", out)
	}
	out = captureStdout(t, func() {
		if err := run([]string{"-engine", "tcp", "-saturate", "-n", "3",
			"-messages", "1000", "-nocoalesce", "-timeout", "30s"}); err != nil {
			t.Fatalf("direct saturate run: %v", err)
		}
	})
	if !strings.Contains(out, "mode=direct") {
		t.Fatalf("direct mode not reported:\n%s", out)
	}
	// Guard rails: saturation and TCP tuning are TCP-engine concepts.
	if err := run([]string{"-saturate"}); err == nil ||
		!strings.Contains(err.Error(), "-engine tcp") {
		t.Fatalf("saturate on sim engine: %v", err)
	}
	if err := run([]string{"-nocoalesce"}); err == nil ||
		!strings.Contains(err.Error(), "-engine tcp") {
		t.Fatalf("nocoalesce on sim engine: %v", err)
	}
}

func TestRunJSONMode(t *testing.T) {
	if err := run([]string{"-protocol", "failstop", "-n", "5", "-k", "2", "-json"}); err != nil {
		t.Fatalf("json run: %v", err)
	}
}

// TestRunTrialsDeterministicAcrossWorkers pins the -workers contract: the
// aggregate report is byte-identical however the trials are fanned out
// (trial tr always simulates with seed+tr).
func TestRunTrialsDeterministicAcrossWorkers(t *testing.T) {
	out := func(workers string) string {
		t.Helper()
		return captureStdout(t, func() {
			if err := run([]string{"-protocol", "failstop", "-n", "7", "-k", "3",
				"-trials", "24", "-seed", "11", "-workers", workers}); err != nil {
				t.Fatal(err)
			}
		})
	}
	base := out("1")
	if !strings.Contains(base, "trials=24") {
		t.Fatalf("missing aggregate header:\n%s", base)
	}
	for _, w := range []string{"4", "16"} {
		if got := out(w); got != base {
			t.Errorf("-workers %s changed output:\n%s\n-- want --\n%s", w, got, base)
		}
	}
}

func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	f()
	w.Close()
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}
