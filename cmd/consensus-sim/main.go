// Command consensus-sim runs a single consensus execution and reports the
// outcome. The -engine flag picks where it runs: the deterministic
// discrete-event simulator (default), a goroutine-per-process in-memory
// cluster, the same with jittered delivery, or a loopback TCP mesh. Fault
// plans (-crash), adversaries (-adversary), and link policies (-policy)
// mean the same thing on every engine.
//
// Usage:
//
//	consensus-sim -protocol failstop -n 7 -k 3 -inputs 0101011 -seed 1
//	consensus-sim -protocol malicious -n 10 -k 3 -adversary balancer -trace
//	consensus-sim -protocol failstop -n 9 -k 4 -crash "3:1:5,7:0:0" -trials 100
//	consensus-sim -protocol failstop -n 7 -k 3 -engine tcp -crash "5:1:3,6:0:0"
//	consensus-sim -protocol failstop -n 7 -k 3 -engine mem -policy drop:0.1,uniform:0.1:1
//	consensus-sim -protocol malicious -n 1000 -k 100 -broadcast sample
//	consensus-sim -protocol broadcast -n 10000 -k 1000 -broadcast sample -eps 1e-3
//	consensus-sim -protocol benor-shared -n 21 -k 10 -trials 100
//	consensus-sim -protocol benor-crash -coin shared -n 7 -k 3 -seed 2
//	consensus-sim -list-protocols
//	consensus-sim -engine tcp -saturate -n 13 -messages 500000
//	consensus-sim -log -engine tcp -n 7 -ops 4096 -batch 16 -pipeline 4
//	consensus-sim -log -engine tcp -rate 20000 -clients 256 -batch 32 -logcrash "2:5"
//
// With -engine tcp, -saturate floods the mesh with consensus-shaped frames
// (no protocol on top) and reports aggregate throughput; -linger and
// -nocoalesce tune the transport's write-coalescing for both modes.
//
// -log runs the replicated-log layer instead of a single decision: a
// workload of -ops operations is batched (-batch, -linger), committed
// through pipelined per-slot Figure-2 instances (-pipeline) multiplexed
// over one shared transport, and reported as ops/sec with commit-latency
// percentiles. -rate paces an open-loop arrival schedule (0 = unpaced),
// -clients sizes the simulated client population, and -logcrash schedules
// slot-boundary fail-stops ("id:slot" entries).
//
// With -trials > 1 it reports aggregate statistics over seeded runs instead
// of a single execution; -workers fans the trials across goroutines without
// changing any reported number (trial tr always uses seed+tr). Live engines
// run single executions only.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"resilient"
	"resilient/internal/stats"
	"resilient/internal/sweep"
	"resilient/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "consensus-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("consensus-sim", flag.ContinueOnError)
	var (
		protoName   = fs.String("protocol", "failstop", "protocol: "+strings.Join(protocolNames(), " | "))
		listProtos  = fs.Bool("list-protocols", false, "print the protocol registry (name, aliases, model, bound, coin) and exit")
		coinName    = fs.String("coin", "auto", "coin scheme for randomized protocols: auto | local | shared")
		n           = fs.Int("n", 7, "number of processes")
		k           = fs.Int("k", -1, "fault parameter (default: the protocol's maximum for n)")
		inputsStr   = fs.String("inputs", "", "initial values as a 0/1 string of length n (default: alternating)")
		seed        = fs.Uint64("seed", 1, "base random seed")
		trials      = fs.Int("trials", 1, "number of seeded runs")
		workers     = fs.Int("workers", 0, "concurrent trial workers when -trials > 1 (0 = GOMAXPROCS); output is identical for every value")
		crashSpec   = fs.String("crash", "", "crash plan: comma-separated id:phase:afterSends entries")
		advSpec     = fs.String("adversary", "", "byzantine strategy on the k highest-numbered processes: silent | balancer | flipper | liar0 | liar1 | equivocator | double-echo | mute")
		showTrace   = fs.Bool("trace", false, "print the execution trace (single-trial runs only)")
		unsafe      = fs.Bool("unsafe", false, "skip the resilience-bound validation of (n, k)")
		schemeName  = fs.String("broadcast", "echo", "echo-broadcast primitive for the malicious and broadcast protocols: echo | sample")
		epsFlag     = fs.Float64("eps", 0, "per-acceptance error bound of -broadcast=sample (0 = default 1e-3)")
		asJSON      = fs.Bool("json", false, "emit the result as JSON (single-trial runs only)")
		metricsPath = fs.String("metrics-json", "", "write a key-sorted run-accounting snapshot to this file (aggregated over all trials)")
		engineName  = fs.String("engine", "sim", "execution engine: sim | mem | jitter | tcp")
		policySpec  = fs.String("policy", "", "link policy: comma-chained wrappers over a base, e.g. uniform:0.1:1 | exp:1 | const:1 | drop:0.1,uniform:0.1:1 | partition:2,const:1")
		unitFlag    = fs.Duration("unit", 0, "wall-clock length of one policy delay unit on live engines (default 1ms)")
		timeoutFlag = fs.Duration("timeout", 30*time.Second, "deadline for live-engine runs")
		saturate    = fs.Bool("saturate", false, "flood the TCP mesh with consensus-shaped frames and report throughput instead of running a protocol (engine tcp only)")
		messages    = fs.Int("messages", 200000, "total message budget in -saturate mode")
		payloadFlag = fs.Int("payload", 0, "payload bytes per message in -saturate mode")
		lingerFlag  = fs.Duration("linger", 0, "TCP write-coalescing window (0 = transport default, engine tcp only)")
		bLingerFlag = fs.Duration("batchlinger", 0, "open-loop batcher linger in -log mode (0 = default)")
		noCoalesce  = fs.Bool("nocoalesce", false, "disable TCP write coalescing: one write syscall per frame (engine tcp only)")
		logMode     = fs.Bool("log", false, "run the replicated-log layer: batched, pipelined consensus slots over one shared transport")
		rateFlag    = fs.Float64("rate", 0, "open-loop arrival rate in ops/sec in -log mode (0 = unpaced)")
		clientsFlag = fs.Int("clients", 0, "simulated client population in -log mode (0 = default)")
		batchFlag   = fs.Int("batch", 0, "maximum operations per consensus slot in -log mode (0 = default)")
		pipeFlag    = fs.Int("pipeline", 0, "consensus slots in flight in -log mode (0 = default)")
		opsFlag     = fs.Int("ops", 0, "total operations in -log mode (0 = default)")
		opBytesFlag = fs.Int("opbytes", 0, "bytes per operation in -log mode (0 = default)")
		logCrashes  = fs.String("logcrash", "", "slot-boundary crash plan in -log mode: comma-separated id:slot entries")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *listProtos {
		printProtocolTable(os.Stdout, *n)
		return nil
	}

	proto, err := resilient.ParseProtocol(*protoName)
	if err != nil {
		return err
	}
	coinScheme, err := resilient.ParseCoinScheme(*coinName)
	if err != nil {
		return err
	}
	protocolSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "protocol" {
			protocolSet = true
		}
	})
	userK := *k
	if *k < 0 {
		*k = proto.MaxFaults(*n)
	}
	scheme, err := parseScheme(*schemeName)
	if err != nil {
		return err
	}
	if err := validateScale(proto, scheme, *n, *epsFlag); err != nil {
		return err
	}
	inputs, err := parseInputs(*inputsStr, *n)
	if err != nil {
		return err
	}
	crashes, err := parseCrashes(*crashSpec)
	if err != nil {
		return err
	}
	adversaries, err := parseAdversaries(*advSpec, *n, *k)
	if err != nil {
		return err
	}
	engine, err := resilient.ParseEngine(*engineName)
	if err != nil {
		return err
	}
	pol, err := parsePolicy(*policySpec)
	if err != nil {
		return err
	}

	var reg *resilient.MetricsRegistry
	if *metricsPath != "" {
		reg = resilient.NewMetricsRegistry()
	}
	writeMetrics := func() error {
		if reg == nil {
			return nil
		}
		f, err := os.Create(*metricsPath)
		if err != nil {
			return err
		}
		defer f.Close()
		return resilient.WriteMetricsJSON(f, reg)
	}

	tcp := resilient.TCPTuning{Linger: *lingerFlag, NoCoalesce: *noCoalesce}
	if (tcp.Linger > 0 || tcp.NoCoalesce) && engine != resilient.EngineTCP {
		return errors.New("-linger and -nocoalesce apply to -engine tcp only")
	}
	if *logMode {
		if *saturate {
			return errors.New("-log and -saturate are mutually exclusive")
		}
		logK := 0 // 0 = the slot protocol's bound for n
		if userK >= 0 {
			logK = userK
		}
		logProto := resilient.Protocol(0) // 0 = the log's default (Figure 2)
		if protocolSet {
			logProto = proto
		}
		lc, err := parseLogCrashes(*logCrashes)
		if err != nil {
			return err
		}
		ctx, cancel := context.WithTimeout(context.Background(), *timeoutFlag)
		defer cancel()
		rep, runErr := resilient.RunLogWorkload(ctx, resilient.LogWorkloadOptions{
			Log: resilient.LogOptions{
				Engine:   engine,
				Protocol: logProto,
				Coin:     coinScheme,
				N:        *n,
				K:        logK,
				Seed:     *seed,
				Batch:    *batchFlag,
				Pipeline: *pipeFlag,
				Linger:   *bLingerFlag,
				Crashes:  lc,
				TCP:      tcp,
				Unit:     *unitFlag,
				Metrics:  reg,
			},
			Ops:     *opsFlag,
			Rate:    *rateFlag,
			Clients: *clientsFlag,
			OpBytes: *opBytesFlag,
		})
		if rep == nil {
			return runErr
		}
		if err := writeMetrics(); err != nil {
			return err
		}
		if *asJSON {
			if err := printLogJSON(*n, rep); err != nil {
				return err
			}
			return runErr
		}
		printLogReport(*n, *rateFlag, rep)
		return runErr
	}
	if *saturate {
		if engine != resilient.EngineTCP {
			return errors.New("-saturate requires -engine tcp")
		}
		ctx, cancel := context.WithTimeout(context.Background(), *timeoutFlag)
		defer cancel()
		rep, runErr := resilient.RunTCPSaturation(ctx, resilient.SaturationOptions{
			N:        *n,
			Messages: *messages,
			Payload:  *payloadFlag,
			TCP:      tcp,
			Metrics:  reg,
		})
		if rep == nil {
			return runErr
		}
		if err := writeMetrics(); err != nil {
			return err
		}
		mode := "coalesce"
		if tcp.NoCoalesce {
			mode = "direct"
		}
		fmt.Printf("saturation  n=%d payload=%dB mode=%s\n", *n, *payloadFlag, mode)
		fmt.Printf("messages    %d\n", rep.Messages)
		fmt.Printf("elapsed     %v\n", rep.Elapsed.Round(time.Millisecond))
		fmt.Printf("throughput  %.0f msgs/s, %.1f MB/s\n", rep.MsgsPerSec, rep.MBPerSec)
		return runErr
	}

	if engine.Live() {
		if *trials > 1 {
			return fmt.Errorf("engine %v runs single executions; aggregate trials with -engine sim", engine)
		}
		if *showTrace {
			return errors.New("-trace is simulator-only")
		}
		ctx, cancel := context.WithTimeout(context.Background(), *timeoutFlag)
		defer cancel()
		out, runErr := resilient.RunScenario(ctx, engine, resilient.Scenario{
			Protocol:    proto,
			N:           *n,
			K:           *k,
			Inputs:      inputs,
			Seed:        *seed,
			Crashes:     crashes,
			Adversaries: adversaries,
			Policy:      pol,
			Unit:        *unitFlag,
			TCP:         tcp,
			Broadcast:   scheme,
			Eps:         *epsFlag,
			Coin:        coinScheme,
			Unsafe:      *unsafe,
			Metrics:     reg,
		})
		if out == nil {
			return runErr
		}
		if err := writeMetrics(); err != nil {
			return err
		}
		if *asJSON {
			if err := printOutcomeJSON(proto, engine, *n, *k, out); err != nil {
				return err
			}
			return runErr
		}
		printOutcome(engine, out)
		return runErr
	}

	if *trials <= 1 {
		opts := resilient.SimOptions{
			Seed:        *seed,
			Crashes:     crashes,
			Adversaries: adversaries,
			Policy:      pol,
			Broadcast:   scheme,
			Eps:         *epsFlag,
			Coin:        coinScheme,
			Unsafe:      *unsafe,
			Metrics:     reg,
		}
		var buf *trace.Buffer
		if *showTrace {
			buf = trace.NewBuffer(0)
			opts.Trace = buf
		}
		res, err := resilient.Simulate(proto, *n, *k, inputs, opts)
		if err != nil {
			return err
		}
		if buf != nil {
			for _, e := range buf.Events() {
				fmt.Println(e)
			}
		}
		if err := writeMetrics(); err != nil {
			return err
		}
		if *asJSON {
			return printJSON(proto, *n, *k, res)
		}
		printResult(res)
		return nil
	}

	type trialOut struct {
		agree, decided bool
		phases, msgs   float64
	}
	results, err := sweep.Run(*trials, *workers, func(tr int) (trialOut, error) {
		res, err := resilient.Simulate(proto, *n, *k, inputs, resilient.SimOptions{
			Seed:        *seed + uint64(tr),
			Crashes:     crashes,
			Adversaries: adversaries,
			Policy:      pol,
			Broadcast:   scheme,
			Eps:         *epsFlag,
			Coin:        coinScheme,
			Unsafe:      *unsafe,
			Metrics:     reg,
		})
		if err != nil {
			return trialOut{}, err
		}
		maxPh := 0
		for _, ph := range res.DecisionPhase {
			if int(ph) > maxPh {
				maxPh = int(ph)
			}
		}
		return trialOut{
			agree:   res.Agreement,
			decided: res.AllDecided,
			phases:  float64(maxPh),
			msgs:    float64(res.MessagesSent),
		}, nil
	})
	if err != nil {
		return err
	}
	var phases, msgs stats.Accumulator
	agree, decided := 0, 0
	for _, r := range results {
		if r.agree {
			agree++
		}
		if r.decided {
			decided++
		}
		phases.Add(r.phases)
		msgs.Add(r.msgs)
	}
	fmt.Printf("protocol   %v  n=%d k=%d  trials=%d\n", proto, *n, *k, *trials)
	fmt.Printf("terminated %d/%d\n", decided, *trials)
	fmt.Printf("agreement  %d/%d\n", agree, *trials)
	fmt.Printf("phases     %s\n", phases.Summarize())
	fmt.Printf("messages   %s\n", msgs.Summarize())
	return writeMetrics()
}

// protocolNames lists every registered protocol's primary spelling for the
// -protocol usage string.
func protocolNames() []string {
	var names []string
	for _, p := range resilient.Protocols() {
		if as := p.Aliases(); len(as) > 0 {
			names = append(names, as[0])
		} else {
			names = append(names, p.String())
		}
	}
	return names
}

// printProtocolTable renders the registry for -list-protocols.
func printProtocolTable(w io.Writer, n int) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "NAME\tALIASES\tMODEL\tBOUND\tMAX K (n="+strconv.Itoa(n)+")\tCOIN")
	for _, p := range resilient.Protocols() {
		coin := "-"
		if p.NeedsCoin() {
			coin = p.DefaultCoin().String()
		}
		fmt.Fprintf(tw, "%v\t%s\t%v\t%s\t%d\t%s\n",
			p, strings.Join(p.Aliases(), ", "), p.Model(), p.Bound(), p.MaxFaults(n), coin)
	}
	tw.Flush()
}

func parseScheme(name string) (resilient.BroadcastScheme, error) {
	switch strings.ToLower(name) {
	case "echo":
		return resilient.SchemeEcho, nil
	case "sample":
		return resilient.SchemeSample, nil
	default:
		return 0, fmt.Errorf("unknown broadcast scheme %q (want echo or sample)", name)
	}
}

// Full-quorum scale ceilings: past these, the echo scheme's message count
// exceeds the simulator's default event budget (Figure-2 consensus costs
// ~n³ echo deliveries per phase, a single broadcast ~n²), so the run would
// stall on EventBudget after minutes of work. Fail fast and point at the
// sampled scheme instead.
const (
	maxEchoConsensusN = 250
	maxEchoBroadcastN = 4000
)

// validateScale cross-checks n, the protocol, and the broadcast scheme
// before any engine starts.
func validateScale(proto resilient.Protocol, scheme resilient.BroadcastScheme, n int, eps float64) error {
	if !proto.NeedsDirectory() {
		if scheme != resilient.SchemeEcho {
			return fmt.Errorf("-broadcast=%v applies to the malicious and broadcast protocols only", scheme)
		}
		if eps != 0 {
			return fmt.Errorf("-eps applies to -broadcast=sample only")
		}
		return nil
	}
	if scheme == resilient.SchemeEcho {
		if eps != 0 {
			return fmt.Errorf("-eps applies to -broadcast=sample only")
		}
		limit := maxEchoConsensusN
		if proto == resilient.ProtocolBroadcast {
			limit = maxEchoBroadcastN
		}
		if n > limit {
			return fmt.Errorf("n=%d exceeds the full-quorum echo scheme's practical ceiling of %d for %v; rerun with -broadcast=sample",
				n, limit, proto)
		}
	}
	return nil
}

func parseInputs(s string, n int) ([]resilient.Value, error) {
	inputs := make([]resilient.Value, n)
	if s == "" {
		for i := range inputs {
			inputs[i] = resilient.Value(i % 2)
		}
		return inputs, nil
	}
	if len(s) != n {
		return nil, fmt.Errorf("inputs length %d, want %d", len(s), n)
	}
	for i, c := range s {
		switch c {
		case '0':
			inputs[i] = resilient.V0
		case '1':
			inputs[i] = resilient.V1
		default:
			return nil, fmt.Errorf("inputs must be 0/1, got %q", c)
		}
	}
	return inputs, nil
}

func parseCrashes(spec string) (map[resilient.ID]resilient.Crash, error) {
	if spec == "" {
		return nil, nil
	}
	plan := make(map[resilient.ID]resilient.Crash)
	for _, entry := range strings.Split(spec, ",") {
		parts := strings.Split(entry, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("crash entry %q: want id:phase:afterSends", entry)
		}
		vals := make([]int, 3)
		for i, p := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return nil, fmt.Errorf("crash entry %q: %w", entry, err)
			}
			vals[i] = v
		}
		id := resilient.ID(vals[0])
		plan[id] = resilient.Crash{
			Process:    id,
			Phase:      resilient.Phase(vals[1]),
			AfterSends: vals[2],
		}
	}
	return plan, nil
}

func parseLogCrashes(spec string) ([]resilient.LogCrash, error) {
	if spec == "" {
		return nil, nil
	}
	var plan []resilient.LogCrash
	for _, entry := range strings.Split(spec, ",") {
		parts := strings.Split(entry, ":")
		if len(parts) != 2 {
			return nil, fmt.Errorf("log crash entry %q: want id:slot", entry)
		}
		id, err := strconv.Atoi(strings.TrimSpace(parts[0]))
		if err != nil {
			return nil, fmt.Errorf("log crash entry %q: %w", entry, err)
		}
		slot, err := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil {
			return nil, fmt.Errorf("log crash entry %q: %w", entry, err)
		}
		plan = append(plan, resilient.LogCrash{Process: resilient.ID(id), Slot: slot})
	}
	return plan, nil
}

func printLogReport(n int, rate float64, rep *resilient.LogReport) {
	pacing := "unpaced"
	if rate > 0 {
		pacing = fmt.Sprintf("%.0f ops/s offered", rate)
	}
	fmt.Printf("log         engine=%v n=%d (%s)\n", rep.Engine, n, pacing)
	fmt.Printf("ops         %d committed in %d batches\n", rep.Ops, rep.Batches)
	fmt.Printf("slots       %d (%d no-op)\n", rep.Slots, rep.NoopSlots)
	fmt.Printf("elapsed     %v\n", rep.Elapsed.Round(time.Millisecond))
	fmt.Printf("throughput  %.0f ops/s committed\n", rep.OpsPerSec)
	if rep.Engine.Live() {
		fmt.Printf("latency     p50=%v p95=%v p99=%v\n",
			rep.P50.Round(time.Microsecond), rep.P95.Round(time.Microsecond), rep.P99.Round(time.Microsecond))
	} else {
		fmt.Printf("sim time    %.3f units\n", rep.SimTime)
	}
}

// logJSON is the machine-readable -log summary; the CI bench lane snapshots
// it.
type logJSON struct {
	Engine     string  `json:"engine"`
	N          int     `json:"n"`
	Ops        int     `json:"ops"`
	Slots      int     `json:"slots"`
	NoopSlots  int     `json:"noopSlots,omitempty"`
	Batches    int     `json:"batches"`
	ElapsedSec float64 `json:"elapsedSeconds"`
	OpsPerSec  float64 `json:"opsPerSec"`
	P50Sec     float64 `json:"p50Seconds,omitempty"`
	P95Sec     float64 `json:"p95Seconds,omitempty"`
	P99Sec     float64 `json:"p99Seconds,omitempty"`
	SimTime    float64 `json:"simTime,omitempty"`
}

func printLogJSON(n int, rep *resilient.LogReport) error {
	out := logJSON{
		Engine:     rep.Engine.String(),
		N:          n,
		Ops:        rep.Ops,
		Slots:      rep.Slots,
		NoopSlots:  rep.NoopSlots,
		Batches:    rep.Batches,
		ElapsedSec: rep.Elapsed.Seconds(),
		OpsPerSec:  rep.OpsPerSec,
		P50Sec:     rep.P50.Seconds(),
		P95Sec:     rep.P95.Seconds(),
		P99Sec:     rep.P99.Seconds(),
		SimTime:    rep.SimTime,
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func parseAdversaries(spec string, n, k int) (map[resilient.ID]resilient.Strategy, error) {
	if spec == "" {
		return nil, nil
	}
	var strat resilient.Strategy
	switch strings.ToLower(spec) {
	case "silent":
		strat = resilient.StrategySilent
	case "balancer":
		strat = resilient.StrategyBalancer
	case "flipper":
		strat = resilient.StrategyFlipper
	case "liar0":
		strat = resilient.StrategyLiar0
	case "liar1":
		strat = resilient.StrategyLiar1
	case "equivocator":
		strat = resilient.StrategyEquivocator
	case "double-echo":
		strat = resilient.StrategyDoubleEcho
	case "mute":
		strat = resilient.StrategyMute
	default:
		return nil, fmt.Errorf("unknown strategy %q", spec)
	}
	if k < 1 {
		return nil, errors.New("adversaries need k >= 1")
	}
	adv := make(map[resilient.ID]resilient.Strategy, k)
	for i := 0; i < k; i++ {
		adv[resilient.ID(n-1-i)] = strat
	}
	return adv, nil
}

// parsePolicy builds a link policy from a comma-chained spec: wrappers
// (drop:P, partition:BOUNDARY) read left to right around a base delay
// policy (uniform:MIN:MAX, exp:MEAN, const:D, or default), which must come
// last. Example: "drop:0.1,uniform:0.1:1" loses 10% of messages and delays
// the rest uniformly.
func parsePolicy(spec string) (resilient.LinkPolicy, error) {
	if spec == "" {
		return nil, nil
	}
	parts := strings.Split(spec, ",")
	var pol resilient.LinkPolicy
	for i := len(parts) - 1; i >= 0; i-- {
		entry := strings.TrimSpace(parts[i])
		fields := strings.Split(entry, ":")
		nums := make([]float64, len(fields)-1)
		for j, f := range fields[1:] {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("policy entry %q: %w", entry, err)
			}
			nums[j] = v
		}
		base := func() error {
			if pol != nil {
				return fmt.Errorf("policy entry %q: base delay policy must be the last entry", entry)
			}
			return nil
		}
		switch fields[0] {
		case "default":
			if err := base(); err != nil {
				return nil, err
			}
			pol = resilient.PolicyFromScheduler(nil)
		case "uniform":
			if len(nums) != 2 {
				return nil, fmt.Errorf("policy entry %q: want uniform:MIN:MAX", entry)
			}
			if err := base(); err != nil {
				return nil, err
			}
			pol = resilient.PolicyFromScheduler(resilient.UniformDelay{Min: nums[0], Max: nums[1]})
		case "exp":
			if len(nums) != 1 {
				return nil, fmt.Errorf("policy entry %q: want exp:MEAN", entry)
			}
			if err := base(); err != nil {
				return nil, err
			}
			pol = resilient.PolicyFromScheduler(resilient.ExponentialDelay{Mean: nums[0]})
		case "const":
			if len(nums) != 1 {
				return nil, fmt.Errorf("policy entry %q: want const:D", entry)
			}
			if err := base(); err != nil {
				return nil, err
			}
			pol = resilient.PolicyFromScheduler(resilient.ConstantDelay{D: nums[0]})
		case "drop":
			if len(nums) != 1 || nums[0] < 0 || nums[0] > 1 {
				return nil, fmt.Errorf("policy entry %q: want drop:P with P in [0,1]", entry)
			}
			pol = resilient.DropPolicy{P: nums[0], Base: pol}
		case "partition":
			if len(nums) != 1 || nums[0] != float64(int(nums[0])) {
				return nil, fmt.Errorf("policy entry %q: want partition:BOUNDARY", entry)
			}
			pol = resilient.PartitionPolicy{
				GroupOf: resilient.HalvesPartition(resilient.ID(int(nums[0]))),
				Base:    pol,
			}
		default:
			return nil, fmt.Errorf("unknown policy entry %q", entry)
		}
	}
	return pol, nil
}

func printOutcome(engine resilient.Engine, out *resilient.Outcome) {
	fmt.Printf("engine       %v\n", engine)
	fmt.Printf("all decided  %v\n", out.AllDecided)
	fmt.Printf("agreement    %v\n", out.Agreement)
	if len(out.Decisions) > 0 {
		fmt.Printf("value        %d\n", out.Value)
	}
	fmt.Printf("elapsed      %v\n", out.Elapsed.Round(time.Microsecond))
	if len(out.Crashed) > 0 {
		fmt.Printf("crashed      %v\n", out.Crashed)
	}
	ids := make([]int, 0, len(out.Decisions))
	for id := range out.Decisions {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, id := range ids {
		fmt.Printf("  p%-3d decided %d in phase %d\n",
			id, out.Decisions[resilient.ID(id)], out.DecisionPhase[resilient.ID(id)])
	}
}

// outcomeJSON is the machine-readable live-run summary.
type outcomeJSON struct {
	Protocol   string            `json:"protocol"`
	Engine     string            `json:"engine"`
	N          int               `json:"n"`
	K          int               `json:"k"`
	AllDecided bool              `json:"allDecided"`
	Agreement  bool              `json:"agreement"`
	Value      *int              `json:"value,omitempty"`
	ElapsedSec float64           `json:"elapsedSeconds"`
	Crashed    []int             `json:"crashed,omitempty"`
	Decisions  []outcomeDecision `json:"decisions"`
}

type outcomeDecision struct {
	Process int `json:"process"`
	Value   int `json:"value"`
	Phase   int `json:"phase"`
}

func printOutcomeJSON(proto resilient.Protocol, engine resilient.Engine, n, k int, res *resilient.Outcome) error {
	out := outcomeJSON{
		Protocol:   proto.String(),
		Engine:     engine.String(),
		N:          n,
		K:          k,
		AllDecided: res.AllDecided,
		Agreement:  res.Agreement,
		ElapsedSec: res.Elapsed.Seconds(),
	}
	if len(res.Decisions) > 0 {
		v := int(res.Value)
		out.Value = &v
	}
	for _, id := range res.Crashed {
		out.Crashed = append(out.Crashed, int(id))
	}
	for id, v := range res.Decisions {
		out.Decisions = append(out.Decisions, outcomeDecision{
			Process: int(id),
			Value:   int(v),
			Phase:   int(res.DecisionPhase[id]),
		})
	}
	sort.Slice(out.Decisions, func(i, j int) bool {
		return out.Decisions[i].Process < out.Decisions[j].Process
	})
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// jsonResult is the machine-readable single-run summary.
type jsonResult struct {
	Protocol   string         `json:"protocol"`
	N          int            `json:"n"`
	K          int            `json:"k"`
	AllDecided bool           `json:"allDecided"`
	Agreement  bool           `json:"agreement"`
	Value      *int           `json:"value,omitempty"`
	Stalled    string         `json:"stalled,omitempty"`
	Messages   int            `json:"messagesSent"`
	Delivered  int            `json:"messagesDelivered"`
	Events     int            `json:"events"`
	SimTime    float64        `json:"simTime"`
	MaxPhase   int            `json:"maxPhase"`
	Crashed    []int          `json:"crashed,omitempty"`
	Decisions  []jsonDecision `json:"decisions"`
}

type jsonDecision struct {
	Process int     `json:"process"`
	Value   int     `json:"value"`
	Phase   int     `json:"phase"`
	Time    float64 `json:"time"`
}

func printJSON(proto resilient.Protocol, n, k int, res *resilient.Result) error {
	out := jsonResult{
		Protocol:   proto.String(),
		N:          n,
		K:          k,
		AllDecided: res.AllDecided,
		Agreement:  res.Agreement,
		Messages:   res.MessagesSent,
		Delivered:  res.MessagesDelivered,
		Events:     res.Events,
		SimTime:    res.SimTime,
		MaxPhase:   int(res.MaxPhase),
	}
	if res.DecidedCount() > 0 {
		v := int(res.Value)
		out.Value = &v
	}
	if res.Stalled != resilient.NotStalled {
		out.Stalled = res.Stalled.String()
	}
	for _, id := range res.Crashed {
		out.Crashed = append(out.Crashed, int(id))
	}
	for id, v := range res.Decisions {
		out.Decisions = append(out.Decisions, jsonDecision{
			Process: int(id),
			Value:   int(v),
			Phase:   int(res.DecisionPhase[id]),
			Time:    res.DecisionTime[id],
		})
	}
	sort.Slice(out.Decisions, func(i, j int) bool {
		return out.Decisions[i].Process < out.Decisions[j].Process
	})
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func printResult(res *resilient.Result) {
	fmt.Printf("all decided  %v\n", res.AllDecided)
	fmt.Printf("agreement    %v\n", res.Agreement)
	if res.DecidedCount() > 0 {
		fmt.Printf("value        %d\n", res.Value)
	}
	if res.Stalled != resilient.NotStalled {
		fmt.Printf("stalled      %v\n", res.Stalled)
	}
	fmt.Printf("messages     %d sent, %d delivered\n", res.MessagesSent, res.MessagesDelivered)
	fmt.Printf("events       %d\n", res.Events)
	fmt.Printf("sim time     %.3f\n", res.SimTime)
	fmt.Printf("max phase    %d\n", res.MaxPhase)
	if len(res.Crashed) > 0 {
		fmt.Printf("crashed      %v\n", res.Crashed)
	}
	for id, v := range res.Decisions {
		fmt.Printf("  p%-3d decided %d in phase %d at t=%.3f\n",
			id, v, res.DecisionPhase[id], res.DecisionTime[id])
	}
}
