package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

func TestRunFailStop(t *testing.T) {
	if err := run([]string{"-n", "30", "-states", "-tail", "10"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMalicious(t *testing.T) {
	if err := run([]string{"-n", "64", "-k", "3", "-malicious", "-tail", "5"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-n", "64", "-k", "3", "-malicious", "-forced=false"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsInvalid(t *testing.T) {
	if err := run([]string{"-n", "0"}); err == nil {
		t.Fatal("n=0 accepted")
	}
	if err := run([]string{"-n", "10", "-k", "5", "-malicious"}); err == nil {
		t.Fatal("2k=n accepted for malicious chain")
	}
}

func TestRunMonteCarloCrossCheck(t *testing.T) {
	if err := run([]string{"-n", "30", "-mc", "100"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-n", "64", "-k", "3", "-malicious", "-mc", "50", "-workers", "4"}); err != nil {
		t.Fatal(err)
	}
}

// TestRunMonteCarloDeterministicAcrossWorkers checks the CLI contract that
// -workers never changes the printed report.
func TestRunMonteCarloDeterministicAcrossWorkers(t *testing.T) {
	out := func(workers string) string {
		t.Helper()
		return captureStdout(t, func() {
			if err := run([]string{"-n", "30", "-mc", "200", "-seed", "7", "-workers", workers}); err != nil {
				t.Fatal(err)
			}
		})
	}
	base := out("1")
	if !strings.Contains(base, "MC E[T]") {
		t.Fatalf("missing MC line:\n%s", base)
	}
	for _, w := range []string{"4", "16"} {
		if got := out(w); got != base {
			t.Errorf("-workers %s changed output:\n%s\n-- want --\n%s", w, got, base)
		}
	}
}

func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	f()
	w.Close()
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}
