package main

import "testing"

func TestRunFailStop(t *testing.T) {
	if err := run([]string{"-n", "30", "-states", "-tail", "10"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMalicious(t *testing.T) {
	if err := run([]string{"-n", "64", "-k", "3", "-malicious", "-tail", "5"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-n", "64", "-k", "3", "-malicious", "-forced=false"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsInvalid(t *testing.T) {
	if err := run([]string{"-n", "0"}); err == nil {
		t.Fatal("n=0 accepted")
	}
	if err := run([]string{"-n", "10", "-k", "5", "-malicious"}); err == nil {
		t.Fatal("2k=n accepted for malicious chain")
	}
}
