// Command markov-analysis prints the Section 4 analytic results: the w_i
// view-majority probabilities, exact expected absorption times from every
// state, the collapsed 3-state bound of eq. (13), and the malicious-case
// bound 1/(2*Phi(l)).
//
// Usage:
//
//	markov-analysis -n 90                  # fail-stop chain with k = n/3
//	markov-analysis -n 90 -k 20            # explicit k
//	markov-analysis -n 100 -k 5 -malicious # Section 4.2 chain
//	markov-analysis -n 90 -states          # include the per-state table
//	markov-analysis -n 90 -mc 4000         # Monte-Carlo cross-check of E[T]
//
// With -mc > 0 a parallel ensemble of simulation runs (see internal/mc)
// cross-checks the exact E[T] from the balanced state; -workers bounds the
// fan-out and never changes the reported numbers.
package main

import (
	"flag"
	"fmt"
	"os"

	"resilient/internal/markov"
	"resilient/internal/mc"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "markov-analysis:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("markov-analysis", flag.ContinueOnError)
	var (
		n         = fs.Int("n", 90, "number of processes")
		k         = fs.Int("k", -1, "fault parameter (default n/3)")
		malicious = fs.Bool("malicious", false, "analyse the Section 4.2 chain (k balancing adversaries)")
		forced    = fs.Bool("forced", true, "malicious chain: adversary messages in every view (the paper's model)")
		states    = fs.Bool("states", false, "print expected absorption time for every state")
		tailN     = fs.Int("tail", 0, "print P[T > t] for t = 0..tail from the balanced state")
		l         = fs.Float64("l", markov.DefaultL, "band parameter l for the collapsed bounds")
		mcTrials  = fs.Int("mc", 0, "Monte-Carlo trials cross-checking E[T] from the balanced state (0 = analytic only)")
		workers   = fs.Int("workers", 0, "concurrent ensemble workers (0 = GOMAXPROCS); results are identical for every value")
		seed      = fs.Uint64("seed", 1, "ensemble base seed (trial t uses PCG(seed, t))")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *k < 0 {
		*k = *n / 3
	}

	ens := ensembleConfig{trials: *mcTrials, workers: *workers, seed: *seed}
	if *malicious {
		return maliciousAnalysis(*n, *k, *forced, *l, *states, *tailN, ens)
	}
	return failStopAnalysis(*n, *k, *l, *states, *tailN, ens)
}

// ensembleConfig carries the -mc/-workers/-seed Monte-Carlo cross-check
// settings.
type ensembleConfig struct {
	trials  int
	workers int
	seed    uint64
}

func printEnsemble(e *mc.Ensemble, exact float64) {
	fmt.Printf("  MC E[T] (%d trials):                %.4f ± %.4f (95%%), Δ from exact %.4f\n",
		e.Trials, e.Mean, e.CI95, e.Mean-exact)
	fmt.Printf("  MC phases p50/p90/p99:              %.1f / %.1f / %.1f (max %.0f)\n",
		e.P50, e.P90, e.P99, e.Max)
}

func printTail(tail []float64) {
	fmt.Println("  t    P[T > t]")
	for t, p := range tail {
		fmt.Printf("  %-4d %.3e\n", t, p)
	}
}

func failStopAnalysis(n, k int, l float64, states bool, tailN int, ens ensembleConfig) error {
	chain := markov.FailStop{N: n, K: k}
	if err := chain.Validate(); err != nil {
		return err
	}
	times, err := chain.ExpectedAbsorption()
	if err != nil {
		return err
	}
	fmt.Printf("fail-stop chain  n=%d k=%d  (Section 4.1)\n", n, k)
	fmt.Printf("  states: 0..%d = processes holding value 1\n", n)
	fmt.Printf("  absorbing region: 2i < n-k (= %d) or 2i > n+k (= %d)\n", n-k, n+k)
	fmt.Printf("  exact E[T] from balanced state %d:  %.4f phases\n", n/2, times[n/2])
	fmt.Printf("  collapsed bound eq.(13), l=%.4f:    %.4f phases\n", l, markov.CollapsedBound(n, l))
	viaMatrix, err := markov.CollapsedBoundViaMatrix(n, l)
	if err != nil {
		return err
	}
	fmt.Printf("  collapsed bound via (I-Q)^-1:       %.4f phases\n", viaMatrix)
	fmt.Printf("  paper's headline (l^2 = 1.5): bound < 7 for every n -> %v\n",
		markov.CollapsedBound(n, markov.DefaultL) < 7)
	if ens.trials > 0 {
		sim := &mc.FailStop{N: n, K: k}
		e, err := sim.AbsorptionEnsemble(mc.EnsembleOptions{
			Trials: ens.trials, Workers: ens.workers, Start: n / 2, Seed: ens.seed,
		})
		if err != nil {
			return err
		}
		printEnsemble(e, times[n/2])
	}
	if states {
		fmt.Println("  state   w_i      E[T]")
		for i := 0; i <= n; i++ {
			fmt.Printf("  %5d   %.4f   %.4f\n", i, chain.W(i), times[i])
		}
	}
	if tailN > 0 {
		tail, err := chain.TailFromBalanced(tailN)
		if err != nil {
			return err
		}
		printTail(tail)
	}
	return nil
}

func maliciousAnalysis(n, k int, forced bool, l float64, states bool, tailN int, ens ensembleConfig) error {
	chain := markov.Malicious{N: n, K: k, Forced: forced}
	if err := chain.Validate(); err != nil {
		return err
	}
	times, err := chain.ExpectedAbsorption()
	if err != nil {
		return err
	}
	correct := chain.Correct()
	lk := markov.LForK(n, k)
	fmt.Printf("malicious chain  n=%d k=%d forced=%v  (Section 4.2)\n", n, k, forced)
	fmt.Printf("  states: 0..%d = correct processes holding value 1\n", correct)
	fmt.Printf("  k corresponds to l = 2k/sqrt(n) = %.4f\n", lk)
	fmt.Printf("  exact E[T] from balanced state %d:  %.4f phases\n", correct/2, times[correct/2])
	fmt.Printf("  paper bound 1/(2*Phi(l)):           %.4f phases\n", markov.MaliciousBound(lk))
	fmt.Printf("  bound at requested l=%.4f:          %.4f phases\n", l, markov.MaliciousBound(l))
	if ens.trials > 0 {
		model := mc.Mixed
		if forced {
			model = mc.Forced
		}
		sim := &mc.Malicious{N: n, K: k, Model: model}
		e, err := sim.AbsorptionEnsemble(mc.EnsembleOptions{
			Trials: ens.trials, Workers: ens.workers, Start: correct / 2, Seed: ens.seed,
		})
		if err != nil {
			return err
		}
		printEnsemble(e, times[correct/2])
	}
	if states {
		fmt.Println("  state   w_i      E[T]")
		for i := 0; i <= correct; i++ {
			fmt.Printf("  %5d   %.4f   %.4f\n", i, chain.W(i), times[i])
		}
	}
	if tailN > 0 {
		tail, err := chain.TailFromBalanced(tailN)
		if err != nil {
			return err
		}
		printTail(tail)
	}
	return nil
}
