package resilient

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"testing"
)

// goldenCase pins one (protocol, options, seed) execution of the
// discrete-event engine. The goldens were captured from the engine before
// the zero-allocation rewrite (typed event queue, in-place broadcast
// shuffle, dense tallies); any change to them means a (Config, Seed) pair
// no longer reproduces the same execution, which is a regression in the
// engine's core determinism contract.
type goldenCase struct {
	name     string
	protocol Protocol
	n, k     int
	opts     SimOptions
	seed     uint64

	decisions string // "id:v id:v ..." sorted by id
	sent      int
	events    int
	simTime   string // exact float64, hex mantissa form
}

func goldenCases() []goldenCase {
	cases := []goldenCase{
		{name: "failstop", protocol: ProtocolFailStop, n: 7, k: 3},
		{name: "malicious", protocol: ProtocolMalicious, n: 7, k: 2},
		{name: "majority", protocol: ProtocolMajority, n: 7, k: 2},
		{name: "benor-crash", protocol: ProtocolBenOrCrash, n: 7, k: 3},
		{name: "benor-byz", protocol: ProtocolBenOrByzantine, n: 7, k: 1},
		{name: "bivalence", protocol: ProtocolBivalence, n: 7, k: 2},
		{name: "broadcast", protocol: ProtocolBroadcast, n: 7, k: 2},
		// The shared coin derives flips from (run seed, phase) only, so the
		// pin also locks the common-coin derivation.
		{name: "benor-shared", protocol: ProtocolBenOrShared, n: 7, k: 3},
		// Mid-broadcast deaths make the delivery outcome depend on the
		// broadcast recipient permutation, pinning the shuffle rewrite.
		{name: "failstop-crashes", protocol: ProtocolFailStop, n: 9, k: 4, opts: SimOptions{
			Crashes: map[ID]Crash{
				1: {Process: 1, Phase: 0, AfterSends: 3},
				4: {Process: 4, Phase: 1, AfterSends: 5},
			},
		}},
		// Balancers query the omniscient world view on every send, pinning
		// the CorrectValueCounts memoization.
		{name: "malicious-balancers", protocol: ProtocolMalicious, n: 10, k: 3, opts: SimOptions{
			Adversaries: map[ID]Strategy{8: StrategyBalancer, 9: StrategyBalancer},
		}},
	}
	var out []goldenCase
	for _, c := range cases {
		for seed := uint64(1); seed <= 3; seed++ {
			cc := c
			cc.seed = seed
			cc.name = fmt.Sprintf("%s/seed=%d", c.name, seed)
			out = append(out, cc)
		}
	}
	return out
}

// goldenResults holds the expected (decisions, sent, events, simTime) tuple
// per case name, captured by running with RESILIENT_GOLDEN_GEN=1 against the
// pre-rewrite engine. Regenerate only when an execution change is
// *intentional*, and say so in the commit message.
var goldenResults = map[string][4]string{
	"failstop/seed=1":            {"0:0 1:0 2:0 3:0 4:0 5:0 6:0", "294", "209", "0x1.31e522016ff1cp+01"},
	"failstop/seed=2":            {"0:0 1:0 2:0 3:0 4:0 5:0 6:0", "294", "199", "0x1.2d97259153f9p+01"},
	"failstop/seed=3":            {"0:0 1:0 2:0 3:0 4:0 5:0 6:0", "245", "160", "0x1.07299eb87c559p+01"},
	"malicious/seed=1":           {"0:0 1:0 2:0 3:0 4:0 5:0 6:0", "1575", "1104", "0x1.ea8080fe121d3p+01"},
	"malicious/seed=2":           {"0:0 1:0 2:0 3:0 4:0 5:0 6:0", "1575", "1113", "0x1.f88dacc511518p+01"},
	"malicious/seed=3":           {"0:0 1:0 2:0 3:0 4:0 5:0 6:0", "1960", "1505", "0x1.633cdc7bfd3ap+02"},
	"majority/seed=1":            {"0:1 1:1 2:1 3:1 4:1 5:1 6:1", "196", "141", "0x1.f0b78c4481b36p+00"},
	"majority/seed=2":            {"0:0 1:0 2:0 3:0 4:0 5:0 6:0", "189", "140", "0x1.f32ef2bb6b64ap+00"},
	"majority/seed=3":            {"0:0 1:0 2:0 3:0 4:0 5:0 6:0", "196", "146", "0x1.264b380775368p+01"},
	"benor-crash/seed=1":         {"0:0 1:0 2:0 3:0 4:0 5:0 6:0", "343", "279", "0x1.a0e3761b6a81ep+01"},
	"benor-crash/seed=2":         {"0:0 1:0 2:0 3:0 4:0 5:0 6:0", "441", "382", "0x1.27753ed4bde9cp+02"},
	"benor-crash/seed=3":         {"0:0 1:0 2:0 3:0 4:0 5:0 6:0", "931", "876", "0x1.4af8fa5b97ca4p+03"},
	"benor-byz/seed=1":           {"0:0 1:0 2:0 3:0 4:0 5:0 6:0", "343", "300", "0x1.33a65f59ddbdcp+02"},
	"benor-byz/seed=2":           {"0:0 1:0 2:0 3:0 4:0 5:0 6:0", "441", "398", "0x1.abc584234aa35p+02"},
	"benor-byz/seed=3":           {"0:0 1:0 2:0 3:0 4:0 5:0 6:0", "441", "394", "0x1.a22cb84d4361bp+02"},
	"bivalence/seed=1":           {"0:1 1:1 2:1 3:1 4:1 5:1 6:1", "343", "343", "0x1.87842f77f6019p+02"},
	"bivalence/seed=2":           {"0:1 1:1 2:1 3:1 4:1 5:1 6:1", "343", "343", "0x1.871ceb67767c1p+02"},
	"bivalence/seed=3":           {"0:1 1:1 2:1 3:1 4:1 5:1 6:1", "343", "342", "0x1.86f3ac9039fd3p+02"},
	"broadcast/seed=1":           {"0:0 1:0 2:0 3:0 4:0 5:0 6:0", "56", "49", "0x1.6d9abaa34ddfp+00"},
	"broadcast/seed=2":           {"0:0 1:0 2:0 3:0 4:0 5:0 6:0", "56", "46", "0x1.5c58b06e61526p+00"},
	"broadcast/seed=3":           {"0:0 1:0 2:0 3:0 4:0 5:0 6:0", "56", "48", "0x1.5475e8b00b0dbp+00"},
	"benor-shared/seed=1":        {"0:1 1:1 2:1 3:1 4:1 5:1 6:1", "245", "199", "0x1.31e522016ff1cp+01"},
	"benor-shared/seed=2":        {"0:0 1:0 2:0 3:0 4:0 5:0 6:0", "245", "193", "0x1.2d97259153f9p+01"},
	"benor-shared/seed=3":        {"0:1 1:1 2:1 3:1 4:1 5:1 6:1", "245", "186", "0x1.3e29c6f77c032p+01"},
	"failstop-crashes/seed=1":    {"0:0 2:0 3:0 5:0 6:0 7:0 8:0", "395", "257", "0x1.4cf6cec977f58p+01"},
	"failstop-crashes/seed=2":    {"0:0 2:0 3:0 5:0 6:0 7:0 8:0", "395", "269", "0x1.420f91e5f0e4ap+01"},
	"failstop-crashes/seed=3":    {"0:0 2:0 3:0 5:0 6:0 7:0 8:0", "395", "276", "0x1.5dd671292d12cp+01"},
	"malicious-balancers/seed=1": {"0:0 1:0 2:0 3:0 4:0 5:0 6:0 7:0", "4010", "3228", "0x1.f7452f3f82584p+01"},
	"malicious-balancers/seed=2": {"0:0 1:0 2:0 3:0 4:0 5:0 6:0 7:0", "4790", "4155", "0x1.2e60e5cfb57c1p+02"},
	"malicious-balancers/seed=3": {"0:1 1:1 2:1 3:1 4:1 5:1 6:1 7:1", "7190", "6227", "0x1.f9fae4f84a95ep+02"},
}

func runGoldenCase(t testing.TB, c goldenCase) (decisions string, sent, events int, simTime string) {
	inputs := make([]Value, c.n)
	for i := range inputs {
		inputs[i] = Value(i % 2)
	}
	opts := c.opts
	opts.Seed = c.seed
	res, err := Simulate(c.protocol, c.n, c.k, inputs, opts)
	if err != nil {
		t.Fatalf("%s: %v", c.name, err)
	}
	ids := make([]int, 0, len(res.Decisions))
	for id := range res.Decisions {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for i, id := range ids {
		if i > 0 {
			decisions += " "
		}
		decisions += fmt.Sprintf("%d:%d", id, res.Decisions[ID(id)])
	}
	return decisions, res.MessagesSent, res.Events,
		strconv.FormatFloat(res.SimTime, 'x', -1, 64)
}

// TestGoldenCoversRegistry fails when a registered protocol has no golden
// case, so adding a protocol to the zoo forces pinning its determinism.
func TestGoldenCoversRegistry(t *testing.T) {
	pinned := map[Protocol]bool{}
	for _, c := range goldenCases() {
		pinned[c.protocol] = true
	}
	for _, p := range Protocols() {
		if !pinned[p] {
			t.Errorf("registered protocol %v has no golden case; add one to goldenCases()", p)
		}
	}
}

// TestGoldenSeedDeterminism locks the engine to the exact executions the
// pre-rewrite engine produced: same (Config, Seed), same Decisions,
// MessagesSent, Events, and bit-exact SimTime.
func TestGoldenSeedDeterminism(t *testing.T) {
	if os.Getenv("RESILIENT_GOLDEN_GEN") != "" {
		for _, c := range goldenCases() {
			d, s, e, st := runGoldenCase(t, c)
			fmt.Printf("\t%q: {%q, %q, %q, %q},\n", c.name, d,
				strconv.Itoa(s), strconv.Itoa(e), st)
		}
		t.Skip("golden generation mode: table printed, nothing asserted")
	}
	for _, c := range goldenCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			want, ok := goldenResults[c.name]
			if !ok {
				t.Fatalf("no golden recorded for %s", c.name)
			}
			d, s, e, st := runGoldenCase(t, c)
			if d != want[0] {
				t.Errorf("decisions = %q, golden %q", d, want[0])
			}
			if got := strconv.Itoa(s); got != want[1] {
				t.Errorf("MessagesSent = %s, golden %s", got, want[1])
			}
			if got := strconv.Itoa(e); got != want[2] {
				t.Errorf("Events = %s, golden %s", got, want[2])
			}
			if st != want[3] {
				t.Errorf("SimTime = %s, golden %s", st, want[3])
			}
		})
	}
}
