package resilient

import (
	"fmt"
	"math/rand/v2"

	"resilient/internal/byzantine"
	"resilient/internal/coin"
	"resilient/internal/core"
	"resilient/internal/faults"
	"resilient/internal/msg"
	"resilient/internal/proto"
	"resilient/internal/runtime"
	"resilient/internal/sample"
	"resilient/internal/sched"
	"resilient/internal/trace"
)

// Result is the outcome of one simulated execution; see the runtime package
// for field documentation.
type Result = runtime.Result

// StallReason explains an incomplete run.
type StallReason = runtime.StallReason

// Stall reasons.
const (
	NotStalled   = runtime.NotStalled
	QueueDrained = runtime.QueueDrained
	EventBudget  = runtime.EventBudget
	TimeHorizon  = runtime.TimeHorizon
)

// Crash schedules a fail-stop death; see the faults package.
type Crash = faults.Crash

// Scheduler assigns message delivery delays; see the sched package for the
// built-in policies.
type Scheduler = sched.Scheduler

// Built-in schedulers.
type (
	// UniformDelay delivers after a uniform delay in [Min, Max].
	UniformDelay = sched.Uniform
	// ExponentialDelay delivers after an exponential delay.
	ExponentialDelay = sched.Exponential
	// ConstantDelay yields an effectively synchronous execution.
	ConstantDelay = sched.Constant
)

// TraceSink receives execution events; see the trace package.
type TraceSink = trace.Sink

// TraceBuffer is an in-memory trace sink.
type TraceBuffer = trace.Buffer

// NewTraceBuffer returns a trace buffer retaining at most limit events
// (0 = unlimited).
func NewTraceBuffer(limit int) *TraceBuffer { return trace.NewBuffer(limit) }

// Strategy names a Byzantine behaviour for simulated adversaries. All
// strategies wrap an honest machine of the simulated protocol and corrupt
// its outbound value claims; see the byzantine package.
type Strategy int

const (
	// StrategySilent never sends anything (equivalent to being dead).
	StrategySilent Strategy = iota + 1
	// StrategyBalancer always claims the current minority value among
	// correct processes -- the Section 4 worst case.
	StrategyBalancer
	// StrategyFlipper claims an independent random value each time.
	StrategyFlipper
	// StrategyLiar0 always claims 0.
	StrategyLiar0
	// StrategyLiar1 always claims 1.
	StrategyLiar1
	// StrategyEquivocator claims 0 toward the first half of the processes
	// and 1 toward the rest.
	StrategyEquivocator
	// StrategyDoubleEcho sends conflicting duplicate echoes (Figure 2
	// runs only).
	StrategyDoubleEcho
	// StrategyMute behaves correctly for two phases, then stops sending.
	StrategyMute
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategySilent:
		return "silent"
	case StrategyBalancer:
		return "balancer"
	case StrategyFlipper:
		return "flipper"
	case StrategyLiar0:
		return "liar0"
	case StrategyLiar1:
		return "liar1"
	case StrategyEquivocator:
		return "equivocator"
	case StrategyDoubleEcho:
		return "double-echo"
	case StrategyMute:
		return "mute"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// BroadcastScheme selects the reliable-broadcast primitive behind the echo
// stage of the Figure-2 protocols (ProtocolMalicious, ProtocolBroadcast).
type BroadcastScheme int

const (
	// SchemeEcho is the paper's full-quorum primitive (the default): every
	// echo goes to all n processes and acceptance needs strictly more than
	// (n+k)/2 of them. Deterministic, O(n²) messages per broadcast.
	SchemeEcho BroadcastScheme = iota
	// SchemeSample is the sample-based primitive of internal/sample: echoes
	// are counted against a per-process random sample and every threshold is
	// sized analytically so each acceptance fails with probability at most
	// ε (SimOptions.Eps). O(n·E) messages with E = O(log(1/ε)) at fixed
	// k/n, which is what makes n=10,000 runs feasible; see DESIGN §13.
	SchemeSample
)

// String names the scheme.
func (s BroadcastScheme) String() string {
	switch s {
	case SchemeEcho:
		return "echo"
	case SchemeSample:
		return "sample"
	default:
		return fmt.Sprintf("BroadcastScheme(%d)", int(s))
	}
}

// Valid reports whether s names a scheme.
func (s BroadcastScheme) Valid() bool {
	return s == SchemeEcho || s == SchemeSample
}

// SimOptions configures Simulate beyond the required arguments. The zero
// value is a sensible default: uniform random delays, seed 0, no faults.
type SimOptions struct {
	// Seed selects the execution; same options, same execution.
	Seed uint64
	// Scheduler overrides the delivery-delay policy.
	Scheduler Scheduler
	// Policy, when non-nil, replaces Scheduler with a full link policy
	// (delay, loss, partition) from the shared fault/delivery layer; the
	// same policy value drives the live engines. Scheduler is ignored when
	// Policy is set.
	Policy LinkPolicy
	// Crashes schedules fail-stop deaths, keyed by process.
	Crashes map[ID]Crash
	// Adversaries assigns Byzantine strategies to processes; those
	// processes stop counting toward agreement and termination.
	Adversaries map[ID]Strategy
	// Trace receives execution events.
	Trace TraceSink
	// MaxEvents bounds the run length (0 = default).
	MaxEvents int
	// MaxSimTime bounds simulated time (0 = unlimited).
	MaxSimTime float64
	// RunToCompletion processes all traffic even after every correct
	// process has decided (for message-count measurements).
	RunToCompletion bool
	// Broadcast selects the echo-broadcast primitive for protocols with an
	// echo stage (ProtocolMalicious, ProtocolBroadcast); those machines run
	// unchanged over either primitive. Protocols without an echo stage
	// ignore the knob. The zero value is the paper's full-quorum scheme.
	Broadcast BroadcastScheme
	// Eps is the sampled scheme's per-acceptance error bound
	// (0 = sample.DefaultEps = 1e-3). Ignored under SchemeEcho.
	Eps float64
	// Coin overrides the coin scheme of randomized protocols (CoinAuto
	// keeps the protocol's registered default). CoinLocal gives every
	// process an independent coin seeded from the run seed; CoinShared
	// derives one common coin from the run seed. Overrides that contradict
	// the protocol -- any scheme for a deterministic protocol, CoinNone for
	// a randomized one -- are rejected.
	Coin CoinScheme
	// Unsafe skips the resilience-bound validation of (n, k), for
	// deliberately misconfigured lower-bound experiments.
	Unsafe bool
	// Metrics, when non-nil, receives run accounting (messages, events,
	// decisions, phase and latency histograms) under the "runtime." prefix;
	// the run's final Result.Metrics carries a snapshot. Sharing one
	// registry across runs aggregates them.
	Metrics *MetricsRegistry
}

// Simulate runs one execution of the protocol with n processes, fault
// parameter k, and the given initial values, under the discrete-event
// engine. It validates (n, k) against the protocol's resilience bound
// unless opts.Unsafe is set.
func Simulate(p Protocol, n, k int, inputs []Value, opts SimOptions) (*Result, error) {
	if !p.Valid() {
		return nil, fmt.Errorf("resilient: unknown protocol %d", int(p))
	}
	if !opts.Unsafe {
		if k > p.MaxFaults(n) {
			return nil, fmt.Errorf("resilient: k=%d exceeds %v bound %d at n=%d",
				k, p, p.MaxFaults(n), n)
		}
	}
	dir, err := sampleDirectory(p, n, k, opts)
	if err != nil {
		return nil, err
	}
	spawner, err := spawnerFor(p, opts, dir)
	if err != nil {
		return nil, err
	}
	byz := make(map[msg.ID]bool, len(opts.Adversaries))
	for id := range opts.Adversaries {
		byz[id] = true
	}
	return runtime.Run(runtime.Config{
		N: n, K: k,
		Inputs:          inputs,
		Spawn:           spawner,
		Byzantine:       byz,
		Crashes:         faults.Plan(opts.Crashes),
		Scheduler:       opts.Scheduler,
		Policy:          opts.Policy,
		Seed:            opts.Seed,
		Sink:            opts.Trace,
		MaxEvents:       opts.MaxEvents,
		MaxSimTime:      opts.MaxSimTime,
		RunToCompletion: opts.RunToCompletion,
		Metrics:         opts.Metrics,
	})
}

// sampleDirectory builds the run's shared sample directory when the sampled
// broadcast scheme applies to the protocol, nil otherwise. The directory is
// drawn deterministically from the run seed, so every process of one run --
// and every engine running the same scenario -- agrees on the samples.
func sampleDirectory(p Protocol, n, k int, opts SimOptions) (*sample.Directory, error) {
	if !opts.Broadcast.Valid() {
		return nil, fmt.Errorf("resilient: unknown broadcast scheme %d", int(opts.Broadcast))
	}
	d, ok := proto.Lookup(p)
	if !ok {
		return nil, fmt.Errorf("resilient: unknown protocol %d", int(p))
	}
	if opts.Broadcast == SchemeEcho || !d.NeedsDirectory {
		return nil, nil
	}
	if opts.Unsafe {
		return nil, fmt.Errorf("resilient: the sampled broadcast scheme requires validated (n, k); it has no Unsafe variant")
	}
	eps := opts.Eps
	if eps == 0 {
		eps = sample.DefaultEps
	}
	plan, err := sample.NewPlan(n, k, eps)
	if err != nil {
		return nil, fmt.Errorf("resilient: sampled broadcast: %w", err)
	}
	return sample.NewDirectory(plan, opts.Seed), nil
}

// spawnerFor builds the runtime spawner: honest machines for correct
// processes, strategy-wrapped machines for adversaries. dir is the shared
// sample directory when the run uses the sampled broadcast scheme.
func spawnerFor(p Protocol, opts SimOptions, dir *sample.Directory) (runtime.Spawner, error) {
	d, ok := proto.Lookup(p)
	if !ok {
		return nil, fmt.Errorf("resilient: unknown protocol %d", int(p))
	}
	scheme, err := d.ResolveCoin(opts.Coin)
	if err != nil {
		return nil, fmt.Errorf("resilient: %w", err)
	}
	// One shared coin per run: every process flips the same value for a
	// given phase. Local coins instead draw from each process's own RNG.
	var shared coin.Source
	if scheme == CoinShared {
		shared = coin.NewShared(opts.Seed)
	}
	honest := func(ctx runtime.SpawnContext) (core.Machine, error) {
		deps := proto.Deps{Sink: ctx.Sink, Unsafe: opts.Unsafe}
		if dir != nil {
			deps.Directory = dir
		}
		switch scheme {
		case CoinLocal:
			deps.Coin = coin.NewLocal(ctx.RNG)
		case CoinShared:
			deps.Coin = shared
		}
		return d.Spawn(ctx.Config, deps)
	}
	if len(opts.Adversaries) == 0 {
		return honest, nil
	}
	return func(ctx runtime.SpawnContext) (core.Machine, error) {
		strat, isAdv := opts.Adversaries[ctx.Config.Self]
		if !ctx.Byzantine || !isAdv {
			return honest(ctx)
		}
		if strat == StrategySilent {
			return byzantine.NewSilent(ctx.Config.Self), nil
		}
		inner, err := honest(ctx)
		if err != nil {
			return nil, err
		}
		return wrapStrategy(strat, inner, ctx)
	}, nil
}

func wrapStrategy(s Strategy, inner core.Machine, ctx runtime.SpawnContext) (core.Machine, error) {
	switch s {
	case StrategyBalancer:
		return byzantine.NewBalancer(inner, ctx.World), nil
	case StrategyFlipper:
		return byzantine.NewFlipper(inner, ctx.RNG), nil
	case StrategyLiar0:
		return byzantine.NewFixedLiar(inner, msg.V0), nil
	case StrategyLiar1:
		return byzantine.NewFixedLiar(inner, msg.V1), nil
	case StrategyEquivocator:
		return byzantine.NewEquivocator(inner, ctx.Config.N), nil
	case StrategyDoubleEcho:
		return byzantine.NewDoubleEchoer(inner), nil
	case StrategyMute:
		return byzantine.NewMute(inner, 2), nil
	default:
		return nil, fmt.Errorf("resilient: unknown strategy %d", int(s))
	}
}

// newRand builds a seeded random source.
func newRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}
